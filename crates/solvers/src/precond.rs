use crate::SolverError;
use voltprop_sparse::{CsrMatrix, IncompleteCholesky};

/// A symmetric positive definite preconditioner: applies `z = M⁻¹ r`.
pub trait Preconditioner {
    /// Applies the preconditioner, writing into `z`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `r.len()` or `z.len()` differ from the
    /// dimension the preconditioner was built for.
    fn apply_into(&self, r: &[f64], z: &mut [f64]);

    /// Estimated heap footprint in bytes.
    fn memory_bytes(&self) -> usize;

    /// Short name for tables and logs.
    fn name(&self) -> &'static str;
}

/// Preconditioner selection for [`Pcg`](crate::Pcg).
///
/// `Ic0` is the default and stands in for the multigrid preconditioner of
/// the paper's PCG comparator; `Amg` is the closest structural match to it;
/// `Jacobi` and `Ssor` are cheap ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecondKind {
    /// Diagonal (Jacobi) scaling.
    Jacobi,
    /// Zero-fill incomplete Cholesky.
    Ic0,
    /// Symmetric successive over-relaxation with factor `omega ∈ (0, 2)`.
    Ssor(f64),
    /// Pairwise-aggregation algebraic multigrid V-cycle.
    Amg,
}

impl PrecondKind {
    /// Builds the preconditioner for a matrix.
    ///
    /// # Errors
    ///
    /// Propagates factorization failures ([`SolverError::Sparse`]) and
    /// rejects SSOR factors outside `(0, 2)` as
    /// [`SolverError::Unsupported`].
    pub fn build(&self, a: &CsrMatrix) -> Result<Box<dyn Preconditioner>, SolverError> {
        match *self {
            PrecondKind::Jacobi => Ok(Box::new(JacobiPrecond::new(a)?)),
            PrecondKind::Ic0 => Ok(Box::new(Ic0Precond::new(a)?)),
            PrecondKind::Ssor(omega) => {
                if !(0.0 < omega && omega < 2.0) {
                    return Err(SolverError::Unsupported {
                        what: format!("SSOR omega {omega} outside (0, 2)"),
                    });
                }
                Ok(Box::new(SsorPrecond::new(a, omega)?))
            }
            PrecondKind::Amg => Ok(Box::new(crate::AmgHierarchy::build(a)?)),
        }
    }

    /// Short name for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            PrecondKind::Jacobi => "jacobi",
            PrecondKind::Ic0 => "ic0",
            PrecondKind::Ssor(_) => "ssor",
            PrecondKind::Amg => "amg",
        }
    }
}

/// Diagonal scaling.
#[derive(Debug, Clone)]
pub(crate) struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    pub(crate) fn new(a: &CsrMatrix) -> Result<Self, SolverError> {
        let diag = a.diag();
        let mut inv_diag = Vec::with_capacity(diag.len());
        for (i, d) in diag.iter().enumerate() {
            if *d <= 0.0 {
                return Err(SolverError::Sparse(
                    voltprop_sparse::SparseError::NotPositiveDefinite { column: i },
                ));
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPrecond { inv_diag })
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        for i in 0..r.len() {
            z[i] = r[i] * self.inv_diag[i];
        }
    }

    fn memory_bytes(&self) -> usize {
        self.inv_diag.len() * 8
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// IC(0) wrapper.
#[derive(Debug, Clone)]
pub(crate) struct Ic0Precond {
    ic: IncompleteCholesky,
}

impl Ic0Precond {
    pub(crate) fn new(a: &CsrMatrix) -> Result<Self, SolverError> {
        Ok(Ic0Precond {
            ic: IncompleteCholesky::new(a)?,
        })
    }
}

impl Preconditioner for Ic0Precond {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
        self.ic.solve_in_place(z);
    }

    fn memory_bytes(&self) -> usize {
        self.ic.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "ic0"
    }
}

/// SSOR preconditioner `M = (D/ω + L) (D/ω)⁻¹ (D/ω + U)` (up to a constant
/// factor, which PCG is invariant to).
#[derive(Debug, Clone)]
pub(crate) struct SsorPrecond {
    a: CsrMatrix,
    diag: Vec<f64>,
    omega: f64,
}

impl SsorPrecond {
    pub(crate) fn new(a: &CsrMatrix, omega: f64) -> Result<Self, SolverError> {
        let diag = a.diag();
        for (i, d) in diag.iter().enumerate() {
            if *d <= 0.0 {
                return Err(SolverError::Sparse(
                    voltprop_sparse::SparseError::NotPositiveDefinite { column: i },
                ));
            }
        }
        Ok(SsorPrecond {
            a: a.clone(),
            diag,
            omega,
        })
    }
}

impl Preconditioner for SsorPrecond {
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        let n = r.len();
        let w = self.omega;
        // Forward: (D/ω + L) y = r.
        for i in 0..n {
            let (cols, vals) = self.a.row(i);
            let mut acc = r[i];
            for (c, v) in cols.iter().zip(vals) {
                let j = *c as usize;
                if j < i {
                    acc = (-v).mul_add(z[j], acc);
                }
            }
            z[i] = acc * w / self.diag[i];
        }
        // Scale by D/ω.
        for i in 0..n {
            z[i] *= self.diag[i] / w;
        }
        // Backward: (D/ω + U) z = y.
        for i in (0..n).rev() {
            let (cols, vals) = self.a.row(i);
            let mut acc = z[i];
            for (c, v) in cols.iter().zip(vals) {
                let j = *c as usize;
                if j > i {
                    acc = (-v).mul_add(z[j], acc);
                }
            }
            z[i] = acc * w / self.diag[i];
        }
    }

    fn memory_bytes(&self) -> usize {
        self.a.memory_bytes() + self.diag.len() * 8
    }

    fn name(&self) -> &'static str {
        "ssor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use voltprop_sparse::TripletMatrix;

    fn spd(n_side: usize) -> CsrMatrix {
        let n = n_side * n_side;
        let mut t = TripletMatrix::new(n, n);
        let id = |x: usize, y: usize| y * n_side + x;
        for y in 0..n_side {
            for x in 0..n_side {
                if x + 1 < n_side {
                    t.stamp_conductance(id(x, y), id(x + 1, y), 1.0);
                }
                if y + 1 < n_side {
                    t.stamp_conductance(id(x, y), id(x, y + 1), 1.0);
                }
            }
        }
        t.stamp_to_ground(0, 2.0);
        t.to_csr()
    }

    /// An SPD preconditioner must yield positive rᵀz and be symmetric:
    /// u·M⁻¹v == v·M⁻¹u.
    fn check_spd(p: &dyn Preconditioner, n: usize) {
        let u: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let mut mu = vec![0.0; n];
        let mut mv = vec![0.0; n];
        p.apply_into(&u, &mut mu);
        p.apply_into(&v, &mut mv);
        let uv: f64 = u.iter().zip(&mv).map(|(a, b)| a * b).sum();
        let vu: f64 = v.iter().zip(&mu).map(|(a, b)| a * b).sum();
        assert!(
            (uv - vu).abs() <= 1e-9 * uv.abs().max(vu.abs()).max(1.0),
            "{}: asymmetric preconditioner ({uv} vs {vu})",
            p.name()
        );
        let mut mu2 = vec![0.0; n];
        p.apply_into(&u, &mut mu2);
        assert_eq!(mu, mu2, "{}: apply must be deterministic", p.name());
        let quad: f64 = u.iter().zip(&mu).map(|(a, b)| a * b).sum();
        assert!(quad > 0.0, "{}: not positive definite", p.name());
    }

    #[test]
    fn all_kinds_build_and_are_spd() {
        let a = spd(6);
        for kind in [
            PrecondKind::Jacobi,
            PrecondKind::Ic0,
            PrecondKind::Ssor(1.2),
            PrecondKind::Amg,
        ] {
            let p = kind.build(&a).unwrap();
            check_spd(p.as_ref(), a.nrows());
            assert!(p.memory_bytes() > 0);
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn jacobi_is_exact_on_diagonal_matrix() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, 5.0);
        let p = PrecondKind::Jacobi.build(&t.to_csr()).unwrap();
        let mut z = vec![0.0; 3];
        p.apply_into(&[2.0, 4.0, 5.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn ssor_rejects_bad_omega() {
        let a = spd(3);
        assert!(matches!(
            PrecondKind::Ssor(2.5).build(&a),
            Err(SolverError::Unsupported { .. })
        ));
        assert!(matches!(
            PrecondKind::Ssor(0.0).build(&a),
            Err(SolverError::Unsupported { .. })
        ));
    }

    #[test]
    fn nonpositive_diagonal_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        let a = t.to_csr();
        assert!(PrecondKind::Jacobi.build(&a).is_err());
        assert!(PrecondKind::Ssor(1.0).build(&a).is_err());
    }
}
