//! Random-walk power grid analysis (Qian, Nassif, Sapatnekar — paper
//! ref \[4\]).
//!
//! A node's voltage satisfies `V_u = Σ (g_un / G_u) V_n + I_u / G_u`, the
//! expectation of a random walk that moves to neighbour `n` with
//! probability `g_un / G_u`, collects `I_u / G_u` at every visit, and is
//! absorbed at pads (voltage sources). The method shines for single-node
//! queries but needs thousands of walks per node for millivolt accuracy —
//! and on 3-D grids the low-resistance TSV pillars act as near-perfect
//! conduits that walks shuttle through, inflating walk lengths (the
//! "trapped in the TSVs" pathology of the paper's §I–II, reproduced by
//! experiment E3).

use crate::{SolveReport, SolverError, StackSolution, StackSolver};
use voltprop_grid::rng::SmallRng;
use voltprop_grid::{NetKind, Stack3d};

/// Outcome of estimating a single node's voltage by random walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkEstimate {
    /// Estimated node voltage (V).
    pub volts: f64,
    /// Standard error of the estimate (V).
    pub std_error: f64,
    /// Completed (absorbed) walks.
    pub walks: usize,
    /// Mean steps per completed walk.
    pub mean_steps: f64,
    /// Walks abandoned at the step cap — the trap indicator.
    pub trapped: usize,
}

/// Monte-Carlo random-walk solver.
///
/// # Example
///
/// ```
/// use voltprop_grid::{Stack3d, NetKind};
/// use voltprop_solvers::RandomWalkSolver;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(6, 6, 1).uniform_load(1e-4).build()?;
/// let rw = RandomWalkSolver::new(2000, 7);
/// let est = rw.estimate_node(&stack, NetKind::Power, 0, 1, 1)?;
/// assert!(est.volts <= 1.8 + 5e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkSolver {
    /// Walks launched per node.
    pub walks_per_node: usize,
    /// Step cap per walk; a walk hitting the cap counts as *trapped*.
    pub max_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomWalkSolver {
    /// A solver with the given number of walks per node and seed
    /// (step cap 1 000 000).
    pub fn new(walks_per_node: usize, seed: u64) -> Self {
        RandomWalkSolver {
            walks_per_node,
            max_steps: 1_000_000,
            seed,
        }
    }

    /// Estimates the voltage at node `(tier, x, y)`.
    ///
    /// # Errors
    ///
    /// * [`SolverError::Unsupported`] if the coordinate is out of range or
    ///   `walks_per_node == 0`.
    /// * [`SolverError::DidNotConverge`] if *every* walk hit the step cap
    ///   (hopelessly trapped).
    pub fn estimate_node(
        &self,
        stack: &Stack3d,
        net: NetKind,
        tier: usize,
        x: usize,
        y: usize,
    ) -> Result<WalkEstimate, SolverError> {
        if tier >= stack.tiers() || x >= stack.width() || y >= stack.height() {
            return Err(SolverError::Unsupported {
                what: format!("node ({tier}, {x}, {y}) outside the stack"),
            });
        }
        if self.walks_per_node == 0 {
            return Err(SolverError::Unsupported {
                what: "walks_per_node must be positive".into(),
            });
        }
        let mut rng =
            SmallRng::new(self.seed ^ ((tier as u64) << 40 | (x as u64) << 20 | y as u64));
        let rail = match net {
            NetKind::Power => stack.vdd(),
            NetKind::Ground => 0.0,
        };
        let load_sign = match net {
            NetKind::Power => -1.0,
            NetKind::Ground => 1.0,
        };
        let (w, h, tiers) = (stack.width(), stack.height(), stack.tiers());
        let top = tiers - 1;
        let g_tsv = 1.0 / stack.tsv_resistance();
        let ideal_pads = stack.pad_resistance() == 0.0;
        let g_pad = if ideal_pads {
            0.0
        } else {
            1.0 / stack.pad_resistance()
        };

        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut total_steps = 0usize;
        let mut completed = 0usize;
        let mut trapped = 0usize;

        // Neighbour scratch: (tier, x, y, conductance); index 6 = rail.
        let mut neigh: Vec<(usize, usize, usize, f64)> = Vec::with_capacity(7);
        for _ in 0..self.walks_per_node {
            let (mut t, mut cx, mut cy) = (tier, x, y);
            let mut gain = 0.0f64;
            let mut steps = 0usize;
            let absorbed = loop {
                if t == top && ideal_pads && stack.is_pad(cx, cy) {
                    break Some(rail);
                }
                if steps >= self.max_steps {
                    break None;
                }
                let gh = 1.0 / stack.r_horizontal(t);
                let gv = 1.0 / stack.r_vertical(t);
                neigh.clear();
                if cx > 0 {
                    neigh.push((t, cx - 1, cy, gh));
                }
                if cx + 1 < w {
                    neigh.push((t, cx + 1, cy, gh));
                }
                if cy > 0 {
                    neigh.push((t, cx, cy - 1, gv));
                }
                if cy + 1 < h {
                    neigh.push((t, cx, cy + 1, gv));
                }
                if stack.is_tsv(cx, cy) {
                    if t > 0 {
                        neigh.push((t - 1, cx, cy, g_tsv));
                    }
                    if t < top {
                        neigh.push((t + 1, cx, cy, g_tsv));
                    }
                }
                let has_rail_exit = t == top && !ideal_pads && stack.is_pad(cx, cy);
                let g_total: f64 = neigh.iter().map(|&(_, _, _, g)| g).sum::<f64>()
                    + if has_rail_exit { g_pad } else { 0.0 };
                gain += load_sign * stack.load(t, cx, cy) / g_total;
                let mut pick = rng.f64_in(0.0, g_total);
                let mut moved = false;
                for &(nt, nx, ny, g) in &neigh {
                    if pick < g {
                        t = nt;
                        cx = nx;
                        cy = ny;
                        moved = true;
                        break;
                    }
                    pick -= g;
                }
                if !moved {
                    // Fell through to the rail exit.
                    break Some(rail);
                }
                steps += 1;
            };
            match absorbed {
                Some(v) => {
                    let est = gain + v;
                    sum += est;
                    sum_sq += est * est;
                    total_steps += steps;
                    completed += 1;
                }
                None => trapped += 1,
            }
        }
        if completed == 0 {
            return Err(SolverError::DidNotConverge {
                iterations: self.walks_per_node,
                residual: f64::INFINITY,
                tolerance: 0.0,
            });
        }
        let mean = sum / completed as f64;
        let var = (sum_sq / completed as f64 - mean * mean).max(0.0);
        Ok(WalkEstimate {
            volts: mean,
            std_error: (var / completed as f64).sqrt(),
            walks: completed,
            mean_steps: total_steps as f64 / completed as f64,
            trapped,
        })
    }
}

impl StackSolver for RandomWalkSolver {
    /// Estimates **every** node by independent walks. Cost is
    /// `O(nodes × walks × walk length)` — usable for small stacks and the
    /// trap experiments, not for the Table-I sizes (which is the paper's
    /// point about this method).
    fn solve_stack(&self, stack: &Stack3d, net: NetKind) -> Result<StackSolution, SolverError> {
        let mut v = vec![0.0; stack.num_nodes()];
        let mut total_walk_steps = 0.0f64;
        let mut worst_err = 0.0f64;
        for t in 0..stack.tiers() {
            for y in 0..stack.height() {
                for x in 0..stack.width() {
                    let est = self.estimate_node(stack, net, t, x, y)?;
                    v[stack.node_index(t, x, y)] = est.volts;
                    total_walk_steps += est.mean_steps * est.walks as f64;
                    worst_err = worst_err.max(est.std_error);
                }
            }
        }
        Ok(StackSolution {
            voltages: v,
            report: SolveReport {
                iterations: total_walk_steps as usize,
                residual: worst_err,
                converged: true,
                workspace_bytes: stack.num_nodes() * 8,
            },
        })
    }

    fn solver_name(&self) -> &'static str {
        "random-walk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectCholesky, StackSolver};

    #[test]
    fn pad_node_is_exact() {
        let s = Stack3d::builder(4, 4, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let rw = RandomWalkSolver::new(10, 3);
        let est = rw.estimate_node(&s, NetKind::Power, 1, 0, 0).unwrap();
        assert!((est.volts - 1.8).abs() < 1e-12);
        assert_eq!(est.mean_steps, 0.0);
    }

    #[test]
    fn estimate_matches_direct_within_noise() {
        let s = Stack3d::builder(5, 5, 1)
            .uniform_load(2e-4)
            .build()
            .unwrap();
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let rw = RandomWalkSolver::new(4000, 42);
        let est = rw.estimate_node(&s, NetKind::Power, 0, 1, 1).unwrap();
        let truth = exact.voltages[s.node_index(0, 1, 1)];
        assert!(
            (est.volts - truth).abs() < 5e-3_f64.max(4.0 * est.std_error),
            "estimate {} vs direct {truth} (stderr {})",
            est.volts,
            est.std_error
        );
    }

    #[test]
    fn walks_get_longer_with_tiers() {
        // The §II-A claim: TSVs lengthen walks. Compare the same footprint
        // with 1 vs 3 tiers, querying the bottom tier.
        let footprint = 8;
        let flat = Stack3d::builder(footprint, footprint, 1)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let stacked = Stack3d::builder(footprint, footprint, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let rw = RandomWalkSolver::new(500, 9);
        let e_flat = rw.estimate_node(&flat, NetKind::Power, 0, 3, 3).unwrap();
        let e_stack = rw.estimate_node(&stacked, NetKind::Power, 0, 3, 3).unwrap();
        assert!(
            e_stack.mean_steps > 1.5 * e_flat.mean_steps,
            "3-tier walks ({}) should far exceed planar walks ({})",
            e_stack.mean_steps,
            e_flat.mean_steps
        );
    }

    #[test]
    fn step_cap_counts_trapped_walks() {
        let s = Stack3d::builder(8, 8, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let rw = RandomWalkSolver {
            walks_per_node: 50,
            max_steps: 2, // absurdly tight: nearly everything traps
            seed: 5,
        };
        match rw.estimate_node(&s, NetKind::Power, 0, 3, 3) {
            Ok(est) => assert!(est.trapped > 0),
            Err(SolverError::DidNotConverge { .. }) => {} // all trapped
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn out_of_range_node_rejected() {
        let s = Stack3d::builder(4, 4, 1).build().unwrap();
        assert!(matches!(
            RandomWalkSolver::new(10, 0).estimate_node(&s, NetKind::Power, 3, 0, 0),
            Err(SolverError::Unsupported { .. })
        ));
    }

    #[test]
    fn full_solve_on_tiny_grid() {
        let s = Stack3d::builder(3, 3, 1)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let exact = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let sol = RandomWalkSolver::new(3000, 11)
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let err = crate::residual::max_abs_error(&exact.voltages, &sol.voltages);
        assert!(err < 1e-2, "max error {err}");
    }
}
