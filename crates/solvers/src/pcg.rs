use crate::{LinearSolver, PrecondKind, Solution, SolveReport, SolverError};
use voltprop_sparse::{vec_ops, CsrMatrix};

/// Preconditioned conjugate gradients — the paper's comparator (refs \[6\],
/// \[12\]).
///
/// Defaults: IC(0) preconditioner, relative residual `1e-8` (which lands
/// node voltages well inside the paper's 0.5 mV accuracy budget on the
/// benchmark grids), iteration budget 50 000.
///
/// # Example
///
/// ```
/// use voltprop_grid::{Stack3d, NetKind};
/// use voltprop_solvers::{Pcg, PrecondKind, StackSolver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(8, 8, 3).uniform_load(1e-4).build()?;
/// let sol = Pcg::with_preconditioner(PrecondKind::Amg)
///     .solve_stack(&stack, NetKind::Power)?;
/// assert!(sol.report.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pcg {
    /// Preconditioner selection.
    pub preconditioner: PrecondKind,
    /// Relative residual target ‖b − Ax‖₂ / ‖b‖₂.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for Pcg {
    fn default() -> Self {
        Pcg {
            preconditioner: PrecondKind::Ic0,
            tolerance: 1e-8,
            max_iterations: 50_000,
        }
    }
}

impl Pcg {
    /// PCG with an explicit preconditioner and default tolerances.
    pub fn with_preconditioner(kind: PrecondKind) -> Self {
        Pcg {
            preconditioner: kind,
            ..Default::default()
        }
    }

    /// Overrides the relative residual tolerance.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }
}

impl LinearSolver for Pcg {
    fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<Solution, SolverError> {
        let n = b.len();
        let bnorm = vec_ops::norm2(b);
        let m = self.preconditioner.build(a)?;
        if bnorm == 0.0 {
            return Ok(Solution {
                x: vec![0.0; n],
                report: SolveReport {
                    iterations: 0,
                    residual: 0.0,
                    converged: true,
                    workspace_bytes: 5 * n * 8 + m.memory_bytes(),
                },
            });
        }
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let mut z = vec![0.0; n];
        m.apply_into(&r, &mut z);
        let mut p = z.clone();
        let mut ap = vec![0.0; n];
        let mut rz = vec_ops::dot(&r, &z);
        let target = self.tolerance * bnorm;
        let mut iterations = 0;
        let mut rnorm = bnorm;
        while iterations < self.max_iterations {
            if rnorm <= target {
                break;
            }
            a.spmv(&p, &mut ap);
            let pap = vec_ops::dot(&p, &ap);
            if pap <= 0.0 {
                return Err(SolverError::Sparse(
                    voltprop_sparse::SparseError::NotPositiveDefinite { column: iterations },
                ));
            }
            let alpha = rz / pap;
            vec_ops::axpy(alpha, &p, &mut x);
            vec_ops::axpy(-alpha, &ap, &mut r);
            rnorm = vec_ops::norm2(&r);
            m.apply_into(&r, &mut z);
            let rz_new = vec_ops::dot(&r, &z);
            vec_ops::xpby(&z, rz_new / rz, &mut p);
            rz = rz_new;
            iterations += 1;
        }
        let residual = rnorm / bnorm;
        if residual > self.tolerance {
            return Err(SolverError::DidNotConverge {
                iterations,
                residual,
                tolerance: self.tolerance,
            });
        }
        Ok(Solution {
            x,
            report: SolveReport {
                iterations,
                residual,
                converged: true,
                workspace_bytes: 5 * n * 8 + m.memory_bytes(),
            },
        })
    }

    fn name(&self) -> &'static str {
        match self.preconditioner {
            PrecondKind::Jacobi => "pcg-jacobi",
            PrecondKind::Ic0 => "pcg-ic0",
            PrecondKind::Ssor(_) => "pcg-ssor",
            PrecondKind::Amg => "pcg-amg",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectCholesky, StackSolver};
    use voltprop_grid::{NetKind, Stack3d};

    fn bench_stack() -> Stack3d {
        Stack3d::builder(12, 12, 3)
            .load_profile(
                voltprop_grid::LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                3,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn all_preconditioners_agree_with_direct() {
        let stack = bench_stack();
        let exact = DirectCholesky::new()
            .solve_stack(&stack, NetKind::Power)
            .unwrap();
        for kind in [
            PrecondKind::Jacobi,
            PrecondKind::Ic0,
            PrecondKind::Ssor(1.5),
            PrecondKind::Amg,
        ] {
            let sol = Pcg::with_preconditioner(kind)
                .solve_stack(&stack, NetKind::Power)
                .unwrap();
            let err = crate::residual::max_abs_error(&exact.voltages, &sol.voltages);
            assert!(err < 5e-4, "{}: max error {err}", kind.name());
        }
    }

    #[test]
    fn ic0_beats_jacobi_iterations() {
        let stack = bench_stack();
        let sys = stack.stamp(NetKind::Power).unwrap();
        let jacobi = Pcg::with_preconditioner(PrecondKind::Jacobi)
            .solve(sys.matrix(), sys.rhs())
            .unwrap();
        let ic0 = Pcg::with_preconditioner(PrecondKind::Ic0)
            .solve(sys.matrix(), sys.rhs())
            .unwrap();
        assert!(
            ic0.report.iterations < jacobi.report.iterations,
            "IC(0) {} vs Jacobi {}",
            ic0.report.iterations,
            jacobi.report.iterations
        );
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let stack = Stack3d::builder(4, 4, 2).build().unwrap();
        let sys = stack.stamp(NetKind::Power).unwrap();
        // Zero loads → rhs is pad injections only; build a real zero rhs.
        let zero = vec![0.0; sys.dim()];
        let sol = Pcg::default().solve(sys.matrix(), &zero).unwrap();
        assert_eq!(sol.report.iterations, 0);
    }

    #[test]
    fn names_reflect_preconditioner() {
        assert_eq!(Pcg::with_preconditioner(PrecondKind::Amg).name(), "pcg-amg");
        assert_eq!(Pcg::default().name(), "pcg-ic0");
    }

    #[test]
    fn budget_exhaustion_is_error() {
        let stack = bench_stack();
        let sys = stack.stamp(NetKind::Power).unwrap();
        let tight = Pcg {
            preconditioner: PrecondKind::Jacobi,
            tolerance: 1e-13,
            max_iterations: 1,
        };
        assert!(matches!(
            tight.solve(sys.matrix(), sys.rhs()),
            Err(SolverError::DidNotConverge { .. })
        ));
    }
}
