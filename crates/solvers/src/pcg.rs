use crate::{LinearSolver, PrecondKind, Solution, SolveReport, SolverError};
use std::sync::Arc;
use voltprop_grid::{NetKind, Stack3d, StampedSystem};
use voltprop_sparse::{vec_ops, CsrMatrix, IncompleteCholesky, SparseError};

/// Preconditioned conjugate gradients — the paper's comparator (refs \[6\],
/// \[12\]).
///
/// Defaults: IC(0) preconditioner, relative residual `1e-8` (which lands
/// node voltages well inside the paper's 0.5 mV accuracy budget on the
/// benchmark grids), iteration budget 50 000.
///
/// This is the one-shot matrix-level entry point; callers solving many
/// load patterns against one grid should build a [`PcgEngine`] instead
/// (or route `Backend::Pcg` through `voltprop_core::Session`, which holds
/// one), amortizing the stamping and the preconditioner factorization.
///
/// # Example
///
/// ```
/// use voltprop_grid::{Stack3d, NetKind};
/// use voltprop_solvers::{Pcg, PrecondKind, StackSolver};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(8, 8, 3).uniform_load(1e-4).build()?;
/// let sol = Pcg::with_preconditioner(PrecondKind::Amg)
///     .solve_stack(&stack, NetKind::Power)?;
/// assert!(sol.report.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pcg {
    /// Preconditioner selection.
    pub preconditioner: PrecondKind,
    /// Relative residual target ‖b − Ax‖₂ / ‖b‖₂.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for Pcg {
    fn default() -> Self {
        Pcg {
            preconditioner: PrecondKind::Ic0,
            tolerance: 1e-8,
            max_iterations: 50_000,
        }
    }
}

impl Pcg {
    /// PCG with an explicit preconditioner and default tolerances.
    pub fn with_preconditioner(kind: PrecondKind) -> Self {
        Pcg {
            preconditioner: kind,
            ..Default::default()
        }
    }

    /// Overrides the relative residual tolerance.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }
}

/// The preconditioned CG recurrence on caller-owned buffers: solves
/// `A x = b` starting from `x = 0`, applying the preconditioner through
/// `apply` (which must implement `z ← M⁻¹ r` for an SPD `M`). Performs no
/// heap allocation on the success path — both the one-shot [`Pcg`] and
/// the warm [`PcgEngine`] run on this core.
///
/// Returns `(iterations, relative_residual)` on convergence. Breakdown is
/// detected *before* the quantities are divided by:
///
/// * `pᵀAp ≤ 0` or non-finite — `A` is not positive definite on the
///   Krylov space;
/// * `rᵀM⁻¹r ≤ 0` or non-finite — the preconditioner is not SPD-applied
///   (this previously produced silent NaN voltages through the
///   `rz_new / rz` division).
///
/// Either surfaces as [`SolverError::Breakdown`]; an exhausted budget is
/// [`SolverError::DidNotConverge`] with the true relative residual. On
/// any error `x` holds the last accepted iterate.
#[allow(clippy::too_many_arguments)]
fn pcg_core(
    a: &CsrMatrix,
    b: &[f64],
    apply: &mut dyn FnMut(&[f64], &mut [f64]),
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &mut [f64],
    ap: &mut [f64],
    tolerance: f64,
    max_iterations: usize,
) -> Result<(usize, f64), SolverError> {
    let bnorm = vec_ops::norm2(b);
    x.fill(0.0);
    if bnorm == 0.0 {
        return Ok((0, 0.0));
    }
    r.copy_from_slice(b);
    apply(r, z);
    p.copy_from_slice(z);
    let mut rz = vec_ops::dot(r, z);
    let target = tolerance * bnorm;
    let mut iterations = 0;
    let mut rnorm = bnorm;
    while rnorm > target {
        if iterations >= max_iterations {
            return Err(SolverError::DidNotConverge {
                iterations,
                residual: rnorm / bnorm,
                tolerance,
            });
        }
        if rz <= 0.0 || !rz.is_finite() {
            return Err(SolverError::Breakdown {
                iteration: iterations,
                what: format!("rᵀM⁻¹r = {rz:e} (preconditioner is not SPD-applied)"),
            });
        }
        a.spmv(p, ap);
        let pap = vec_ops::dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            return Err(SolverError::Breakdown {
                iteration: iterations,
                what: format!("pᵀAp = {pap:e} (matrix is not positive definite)"),
            });
        }
        let alpha = rz / pap;
        vec_ops::axpy(alpha, p, x);
        vec_ops::axpy(-alpha, ap, r);
        rnorm = vec_ops::norm2(r);
        apply(r, z);
        let rz_new = vec_ops::dot(r, z);
        vec_ops::xpby(z, rz_new / rz, p);
        rz = rz_new;
        iterations += 1;
    }
    Ok((iterations, rnorm / bnorm))
}

impl LinearSolver for Pcg {
    fn solve(&self, a: &CsrMatrix, b: &[f64]) -> Result<Solution, SolverError> {
        let n = b.len();
        let m = self.preconditioner.build(a)?;
        let mut x = vec![0.0; n];
        let mut r = vec![0.0; n];
        let mut z = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut ap = vec![0.0; n];
        let (iterations, residual) = pcg_core(
            a,
            b,
            &mut |r, z| m.apply_into(r, z),
            &mut x,
            &mut r,
            &mut z,
            &mut p,
            &mut ap,
            self.tolerance,
            self.max_iterations,
        )?;
        Ok(Solution {
            x,
            report: SolveReport {
                iterations,
                residual,
                converged: true,
                workspace_bytes: 5 * n * 8 + m.memory_bytes(),
            },
        })
    }

    fn name(&self) -> &'static str {
        match self.preconditioner {
            PrecondKind::Jacobi => "pcg-jacobi",
            PrecondKind::Ic0 => "pcg-ic0",
            PrecondKind::Ssor(_) => "pcg-ssor",
            PrecondKind::Amg => "pcg-amg",
        }
    }
}

/// The engine's prefactored preconditioner: IC(0) by default, with the
/// diagonal (Jacobi) fallback when the incomplete factorization breaks
/// down even after its diagonal-shift retries. Both variants carry an
/// f32 shadow of their factor (built once) for the mixed-precision
/// application.
#[derive(Debug)]
enum EnginePrecond {
    Ic0(IncompleteCholesky),
    Jacobi {
        inv_diag: Vec<f64>,
        inv_diag32: Vec<f32>,
    },
}

impl EnginePrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            EnginePrecond::Ic0(ic) => ic.solve_into(r, z),
            EnginePrecond::Jacobi { inv_diag, .. } => {
                for (zi, (ri, di)) in z.iter_mut().zip(r.iter().zip(inv_diag)) {
                    *zi = ri * di;
                }
            }
        }
    }

    /// Mixed-precision application: the triangular sweeps (or the
    /// diagonal scaling) run in f32 through the shadow factor, with
    /// `z32` as the working image. The preconditioner stays *fixed*
    /// across iterations — the same `M₃₂` every call — so the CG
    /// recurrence (which stays f64) is undisturbed.
    fn apply_f32(&self, r: &[f64], z: &mut [f64], z32: &mut [f32]) {
        match self {
            EnginePrecond::Ic0(ic) => ic.solve_into_f32(r, z, z32),
            EnginePrecond::Jacobi { inv_diag32, .. } => {
                for (zi, (ri, di)) in z.iter_mut().zip(r.iter().zip(inv_diag32)) {
                    *zi = f64::from((*ri as f32) * di);
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            EnginePrecond::Ic0(ic) => ic.memory_bytes(),
            EnginePrecond::Jacobi {
                inv_diag,
                inv_diag32,
            } => inv_diag.len() * 8 + inv_diag32.len() * 4,
        }
    }

    fn name(&self) -> &'static str {
        match self {
            EnginePrecond::Ic0(_) => "ic0",
            EnginePrecond::Jacobi { .. } => "jacobi",
        }
    }
}

/// The prefactored, reusable state of preconditioned CG on one stack: the
/// full 3-D MNA system stamped once, the preconditioner factored once
/// (IC(0), falling back to Jacobi on a non-positive pivot), and every
/// iteration buffer preallocated — the PCG counterpart of [`Rb3dEngine`]
/// (`voltprop_core::Session` routes `Backend::Pcg` through one).
///
/// The power and ground nets share one conductance matrix (only the rail
/// and the load sign differ), so a single factorization serves both; the
/// load-independent part of each net's right-hand side is split out at
/// build, and [`PcgEngine::solve`] reassembles the full RHS from the
/// request's loads without touching the heap. Warm solves perform **zero
/// heap allocations**.
///
/// [`Rb3dEngine`]: crate::Rb3dEngine
///
/// # Example
///
/// ```
/// use voltprop_grid::{NetKind, Stack3d};
/// use voltprop_solvers::PcgEngine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stack = Stack3d::builder(8, 8, 3).uniform_load(1e-4).build()?;
/// let mut engine = PcgEngine::build(&stack)?;
/// let mut v = vec![0.0; engine.num_nodes()];
/// let report = engine.solve(stack.loads(), NetKind::Power, 1e-8, 50_000, &mut v)?;
/// assert!(report.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PcgEngine {
    /// The frozen post-build half, shared by every fork of this engine
    /// (see [`PcgEngine::fork`]).
    shared: Arc<PcgShared>,
    /// Iteration scratch, all `sys.dim()`-sized.
    rhs: Vec<f64>,
    x: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    /// f32 working image for the mixed-precision preconditioner
    /// application ([`PcgEngine::solve_mixed`]).
    z32: Vec<f32>,
}

/// The read-only post-build half of a [`PcgEngine`]: the stamped system,
/// the factored preconditioner, and the load-independent RHS bases. One
/// `PcgShared` behind an [`Arc`] backs every fork of an engine; nothing
/// here is written after `build`.
#[derive(Debug)]
struct PcgShared {
    nn: usize,
    vdd: f64,
    /// The power-net stamped system; the ground net reuses its matrix and
    /// node-index map (same conductances, same Dirichlet set).
    sys: StampedSystem,
    /// Load-independent RHS part per net (pad/rail folding terms).
    rhs_base_power: Vec<f64>,
    rhs_base_ground: Vec<f64>,
    precond: EnginePrecond,
}

impl PcgEngine {
    /// Validates the stack, stamps the full 3-D MNA system once, and
    /// factors the preconditioner: IC(0) first, falling back to Jacobi
    /// scaling if the incomplete factorization reports a non-positive
    /// pivot even after its diagonal-shift retries.
    ///
    /// # Errors
    ///
    /// [`SolverError::Grid`] if the stack fails validation or cannot be
    /// stamped; [`SolverError::Sparse`] if even the Jacobi fallback is
    /// impossible (a non-positive diagonal — the system is not SPD).
    pub fn build(stack: &Stack3d) -> Result<Self, SolverError> {
        Self::build_inner(stack, 0.0)
    }

    /// [`PcgEngine::build`] on the transient companion system
    /// `G + α·diag(C)` (see `Stack3d::stamp_dynamic`): the augmented
    /// matrix is stamped and its IC(0) preconditioner factored **once**,
    /// after which a transient stepper reuses them for every step of a
    /// fixed-`h` waveform, feeding the per-step companion currents
    /// through [`PcgEngine::solve_with_source`]. `alpha = 0.0` is exactly
    /// [`PcgEngine::build`].
    ///
    /// # Errors
    ///
    /// See [`PcgEngine::build`]; additionally [`SolverError::Grid`] for a
    /// negative or non-finite `alpha`.
    pub fn build_companion(stack: &Stack3d, alpha: f64) -> Result<Self, SolverError> {
        Self::build_inner(stack, alpha)
    }

    fn build_inner(stack: &Stack3d, alpha: f64) -> Result<Self, SolverError> {
        stack.validate()?;
        let nn = stack.num_nodes();
        let sys = stack.stamp_dynamic(NetKind::Power, alpha)?;
        let ground = stack.stamp_dynamic(NetKind::Ground, alpha)?;
        debug_assert_eq!(sys.dim(), ground.dim(), "nets share the conductance matrix");
        let dim = sys.dim();

        // The stamped RHS is (load-independent rail folding) + sign·loads
        // on the free nodes; subtracting the build-time load contribution
        // leaves the base each request's loads are re-added to.
        let mut rhs_base_power = sys.rhs().to_vec();
        let mut rhs_base_ground = ground.rhs().to_vec();
        for (node, &load) in stack.loads().iter().enumerate() {
            if let Some(ri) = sys.reduced_index(node) {
                rhs_base_power[ri] += load; // power stamps −load
                rhs_base_ground[ri] -= load; // ground stamps +load
            }
        }

        let precond = match IncompleteCholesky::new(sys.matrix()) {
            Ok(ic) => EnginePrecond::Ic0(ic),
            Err(SparseError::NotPositiveDefinite { .. }) => {
                let diag = sys.matrix().diag();
                let mut inv_diag = Vec::with_capacity(dim);
                for (i, &d) in diag.iter().enumerate() {
                    if d <= 0.0 {
                        return Err(SolverError::Sparse(SparseError::NotPositiveDefinite {
                            column: i,
                        }));
                    }
                    inv_diag.push(1.0 / d);
                }
                let inv_diag32 = inv_diag.iter().map(|&d| d as f32).collect();
                EnginePrecond::Jacobi {
                    inv_diag,
                    inv_diag32,
                }
            }
            Err(e) => return Err(e.into()),
        };

        Ok(PcgEngine {
            shared: Arc::new(PcgShared {
                nn,
                vdd: stack.vdd(),
                sys,
                rhs_base_power,
                rhs_base_ground,
                precond,
            }),
            rhs: vec![0.0; dim],
            x: vec![0.0; dim],
            r: vec![0.0; dim],
            z: vec![0.0; dim],
            p: vec![0.0; dim],
            ap: vec![0.0; dim],
            z32: vec![0.0; dim],
        })
    }

    /// A new engine sharing this engine's frozen half — the stamped
    /// system, the factored preconditioner (and its f32 shadow), and the
    /// RHS bases — with freshly allocated iteration scratch. No
    /// restamping or refactorization happens; forks solve independently
    /// and reproduce the original's solves bitwise (every solve starts
    /// from the zero initial guess).
    #[must_use]
    pub fn fork(&self) -> PcgEngine {
        let dim = self.shared.sys.dim();
        PcgEngine {
            shared: Arc::clone(&self.shared),
            rhs: vec![0.0; dim],
            x: vec![0.0; dim],
            r: vec![0.0; dim],
            z: vec![0.0; dim],
            p: vec![0.0; dim],
            ap: vec![0.0; dim],
            z32: vec![0.0; dim],
        }
    }

    /// Number of grid nodes this engine serves.
    pub fn num_nodes(&self) -> usize {
        self.shared.nn
    }

    /// Number of unknowns of the reduced (pad-folded) system.
    pub fn dim(&self) -> usize {
        self.shared.sys.dim()
    }

    /// The active preconditioner: `"ic0"` in the common case, `"jacobi"`
    /// if the incomplete factorization broke down at build.
    pub fn precond_name(&self) -> &'static str {
        self.shared.precond.name()
    }

    /// Runs preconditioned CG on one load vector (`loads[node]`, flat
    /// tier-major, `num_nodes` entries), writing the full per-node
    /// voltages into `v` (same layout). Every call starts from the zero
    /// initial guess, so results are deterministic regardless of what `v`
    /// held; warm calls perform **zero heap allocations**.
    ///
    /// `tolerance` is the relative residual target `‖b − Ax‖₂ / ‖b‖₂`,
    /// `max_iterations` the CG iteration budget.
    ///
    /// # Errors
    ///
    /// * [`SolverError::Unsupported`] on a malformed `loads`/`v` length.
    /// * [`SolverError::DidNotConverge`] if the budget runs out (in which
    ///   case `v` holds the last iterate).
    /// * [`SolverError::Breakdown`] on numerical breakdown (`pᵀAp ≤ 0` or
    ///   a zero/non-finite `rᵀM⁻¹r`); more iterations cannot help.
    pub fn solve(
        &mut self,
        loads: &[f64],
        net: NetKind,
        tolerance: f64,
        max_iterations: usize,
        v: &mut [f64],
    ) -> Result<SolveReport, SolverError> {
        self.solve_inner(loads, net, None, tolerance, max_iterations, v, false)
    }

    /// [`PcgEngine::solve`] with an additional per-node current source
    /// (`source[node]`, A, positive into the node, net-independent sign)
    /// added to the right-hand side — the transient companion currents
    /// `α·C·v_n` (+ capacitor-current state for trapezoidal). Entries at
    /// Dirichlet (folded) nodes are ignored. Warm calls perform zero heap
    /// allocations.
    ///
    /// # Errors
    ///
    /// See [`PcgEngine::solve`].
    pub fn solve_with_source(
        &mut self,
        loads: &[f64],
        net: NetKind,
        source: &[f64],
        tolerance: f64,
        max_iterations: usize,
        v: &mut [f64],
    ) -> Result<SolveReport, SolverError> {
        self.solve_inner(
            loads,
            net,
            Some(source),
            tolerance,
            max_iterations,
            v,
            false,
        )
    }

    /// Like [`PcgEngine::solve`] with the preconditioner applied in f32
    /// through its prebuilt shadow factor (the CG recurrence — spmv,
    /// dot products, axpy updates, residual — stays f64). The residual
    /// target is unchanged, so a converged mixed solve meets exactly the
    /// same `‖b − Ax‖₂ / ‖b‖₂ ≤ tolerance` contract as the f64 path;
    /// only the iteration count may differ (by the f32 perturbation of
    /// the preconditioner quality). Warm calls perform zero heap
    /// allocations.
    ///
    /// # Errors
    ///
    /// See [`PcgEngine::solve`].
    pub fn solve_mixed(
        &mut self,
        loads: &[f64],
        net: NetKind,
        tolerance: f64,
        max_iterations: usize,
        v: &mut [f64],
    ) -> Result<SolveReport, SolverError> {
        self.solve_inner(loads, net, None, tolerance, max_iterations, v, true)
    }

    #[allow(clippy::too_many_arguments)] // internal fan-in of the entry points
    fn solve_inner(
        &mut self,
        loads: &[f64],
        net: NetKind,
        source: Option<&[f64]>,
        tolerance: f64,
        max_iterations: usize,
        v: &mut [f64],
        mixed: bool,
    ) -> Result<SolveReport, SolverError> {
        let nn = self.shared.nn;
        if loads.len() != nn || v.len() != nn || source.is_some_and(|s| s.len() != nn) {
            return Err(SolverError::Unsupported {
                what: format!(
                    "pcg engine serves {nn} nodes (got {} loads, {} voltages)",
                    loads.len(),
                    v.len()
                ),
            });
        }
        let (rail, load_sign, base): (f64, f64, &[f64]) = match net {
            NetKind::Power => (self.shared.vdd, -1.0, &self.shared.rhs_base_power),
            NetKind::Ground => (0.0, 1.0, &self.shared.rhs_base_ground),
        };
        self.rhs.copy_from_slice(base);
        for (node, &load) in loads.iter().enumerate() {
            if let Some(ri) = self.shared.sys.reduced_index(node) {
                self.rhs[ri] += load_sign * load;
                if let Some(src) = source {
                    self.rhs[ri] += src[node];
                }
            }
        }
        let PcgEngine {
            shared,
            rhs,
            x,
            r,
            z,
            p,
            ap,
            z32,
        } = self;
        let sys = &shared.sys;
        let precond = &shared.precond;
        // Two monomorphic calls rather than one boxed closure: boxing
        // would put an allocation on the warm path.
        let outcome = if mixed {
            pcg_core(
                sys.matrix(),
                rhs,
                &mut |r, z| precond.apply_f32(r, z, z32),
                x,
                r,
                z,
                p,
                ap,
                tolerance,
                max_iterations,
            )
        } else {
            pcg_core(
                sys.matrix(),
                rhs,
                &mut |r, z| precond.apply(r, z),
                x,
                r,
                z,
                p,
                ap,
                tolerance,
                max_iterations,
            )
        };
        // Expand on every path: on DidNotConverge `x` holds the last
        // iterate (mirroring `Rb3dEngine::solve`). `v` spans the grid's
        // `nn` nodes, so the virtual rail node of resistive-pad stamps
        // (which sits past `nn`) is skipped.
        sys.expand_into(x, rail, v);
        let (iterations, residual) = outcome?;
        Ok(SolveReport {
            iterations,
            residual,
            converged: true,
            workspace_bytes: self.memory_bytes() + v.len() * 8,
        })
    }

    /// Estimated heap footprint in bytes (stamped system, preconditioner
    /// factor, RHS bases, and iteration scratch; the caller owns `v`).
    pub fn memory_bytes(&self) -> usize {
        self.shared.sys.memory_bytes()
            + self.shared.precond.memory_bytes()
            + (self.shared.rhs_base_power.len()
                + self.shared.rhs_base_ground.len()
                + self.rhs.len()
                + self.x.len()
                + self.r.len()
                + self.z.len()
                + self.p.len()
                + self.ap.len())
                * 8
            + self.z32.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectCholesky, StackSolver};
    use voltprop_grid::{NetKind, Stack3d};

    fn bench_stack() -> Stack3d {
        Stack3d::builder(12, 12, 3)
            .load_profile(
                voltprop_grid::LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                3,
            )
            .build()
            .unwrap()
    }

    #[test]
    fn all_preconditioners_agree_with_direct() {
        let stack = bench_stack();
        let exact = DirectCholesky::new()
            .solve_stack(&stack, NetKind::Power)
            .unwrap();
        for kind in [
            PrecondKind::Jacobi,
            PrecondKind::Ic0,
            PrecondKind::Ssor(1.5),
            PrecondKind::Amg,
        ] {
            let sol = Pcg::with_preconditioner(kind)
                .solve_stack(&stack, NetKind::Power)
                .unwrap();
            let err = crate::residual::max_abs_error(&exact.voltages, &sol.voltages);
            assert!(err < 5e-4, "{}: max error {err}", kind.name());
        }
    }

    #[test]
    fn ic0_beats_jacobi_iterations() {
        let stack = bench_stack();
        let sys = stack.stamp(NetKind::Power).unwrap();
        let jacobi = Pcg::with_preconditioner(PrecondKind::Jacobi)
            .solve(sys.matrix(), sys.rhs())
            .unwrap();
        let ic0 = Pcg::with_preconditioner(PrecondKind::Ic0)
            .solve(sys.matrix(), sys.rhs())
            .unwrap();
        assert!(
            ic0.report.iterations < jacobi.report.iterations,
            "IC(0) {} vs Jacobi {}",
            ic0.report.iterations,
            jacobi.report.iterations
        );
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let stack = Stack3d::builder(4, 4, 2).build().unwrap();
        let sys = stack.stamp(NetKind::Power).unwrap();
        // Zero loads → rhs is pad injections only; build a real zero rhs.
        let zero = vec![0.0; sys.dim()];
        let sol = Pcg::default().solve(sys.matrix(), &zero).unwrap();
        assert_eq!(sol.report.iterations, 0);
    }

    #[test]
    fn names_reflect_preconditioner() {
        assert_eq!(Pcg::with_preconditioner(PrecondKind::Amg).name(), "pcg-amg");
        assert_eq!(Pcg::default().name(), "pcg-ic0");
    }

    #[test]
    fn budget_exhaustion_is_error() {
        let stack = bench_stack();
        let sys = stack.stamp(NetKind::Power).unwrap();
        let tight = Pcg {
            preconditioner: PrecondKind::Jacobi,
            tolerance: 1e-13,
            max_iterations: 1,
        };
        assert!(matches!(
            tight.solve(sys.matrix(), sys.rhs()),
            Err(SolverError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn indefinite_matrix_is_typed_breakdown_not_nan() {
        // A symmetric indefinite matrix: plain CG must refuse with a
        // typed breakdown instead of quietly iterating on NaNs. Jacobi
        // needs a positive diagonal, so keep the diagonal positive but
        // dominate it with negative coupling (eigenvalues straddle 0).
        let mut t = voltprop_sparse::TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        t.push(0, 1, 3.0);
        t.push(1, 0, 3.0);
        let a = t.to_csr();
        let solver = Pcg {
            preconditioner: PrecondKind::Jacobi,
            tolerance: 1e-12,
            max_iterations: 100,
        };
        match solver.solve(&a, &[1.0, -1.0]) {
            Err(SolverError::Breakdown { what, .. }) => {
                assert!(what.contains("pᵀAp"), "unexpected breakdown: {what}");
            }
            other => panic!("expected Breakdown, got {other:?}"),
        }
    }

    #[test]
    fn engine_matches_one_shot_pcg_and_direct() {
        let stack = bench_stack();
        let mut engine = PcgEngine::build(&stack).unwrap();
        assert_eq!(engine.precond_name(), "ic0");
        assert!(engine.dim() > 0 && engine.memory_bytes() > 0);
        let mut v = vec![0.0; engine.num_nodes()];
        for net in [NetKind::Power, NetKind::Ground] {
            let exact = DirectCholesky::new().solve_stack(&stack, net).unwrap();
            let rep = engine
                .solve(stack.loads(), net, 1e-8, 50_000, &mut v)
                .unwrap();
            assert!(rep.converged);
            let err = crate::residual::max_abs_error(&exact.voltages, &v);
            assert!(err < 5e-4, "{net:?}: max error {err}");
            let one_shot = Pcg::default().solve_stack(&stack, net).unwrap();
            let drift = crate::residual::max_abs_error(&one_shot.voltages, &v);
            assert!(drift < 1e-9, "{net:?}: engine vs one-shot drift {drift}");
        }
    }

    #[test]
    fn mixed_precond_meets_same_residual_contract() {
        let stack = bench_stack();
        let mut engine = PcgEngine::build(&stack).unwrap();
        let mut v64 = vec![0.0; engine.num_nodes()];
        let mut v32 = vec![0.0; engine.num_nodes()];
        for net in [NetKind::Power, NetKind::Ground] {
            let r64 = engine
                .solve(stack.loads(), net, 1e-8, 50_000, &mut v64)
                .unwrap();
            let r32 = engine
                .solve_mixed(stack.loads(), net, 1e-8, 50_000, &mut v32)
                .unwrap();
            assert!(r64.converged && r32.converged);
            assert!(r32.residual <= 1e-8, "{net:?}: residual {}", r32.residual);
            let drift = crate::residual::max_abs_error(&v64, &v32);
            assert!(drift < 5e-4, "{net:?}: mixed vs f64 drift {drift}");
        }
    }

    #[test]
    fn engine_reuse_across_load_patterns_is_deterministic() {
        let stack = bench_stack();
        let mut engine = PcgEngine::build(&stack).unwrap();
        let mut v1 = vec![0.0; engine.num_nodes()];
        let mut v2 = vec![0.0; engine.num_nodes()];
        let scaled: Vec<f64> = stack.loads().iter().map(|l| 1.5 * l).collect();
        engine
            .solve(stack.loads(), NetKind::Power, 1e-8, 50_000, &mut v1)
            .unwrap();
        // A different load pattern in between must not perturb a repeat.
        engine
            .solve(&scaled, NetKind::Power, 1e-8, 50_000, &mut v2)
            .unwrap();
        engine
            .solve(stack.loads(), NetKind::Power, 1e-8, 50_000, &mut v2)
            .unwrap();
        assert_eq!(v1, v2, "warm engine solves must be reproducible");
        // Scaled loads against a fresh stamp: same answer.
        let mut scaled_stack = stack.clone();
        scaled_stack.set_loads(scaled.clone()).unwrap();
        let fresh = Pcg::default()
            .solve_stack(&scaled_stack, NetKind::Power)
            .unwrap();
        engine
            .solve(&scaled, NetKind::Power, 1e-8, 50_000, &mut v2)
            .unwrap();
        let drift = crate::residual::max_abs_error(&fresh.voltages, &v2);
        assert!(drift < 1e-9, "reused engine drift {drift}");
    }

    #[test]
    fn engine_serves_resistive_pads_and_single_tier() {
        // The shapes voltage propagation refuses are exactly what the PCG
        // reference exists for.
        for stack in [
            Stack3d::builder(8, 8, 3)
                .pad_resistance(0.2)
                .uniform_load(3e-4)
                .build()
                .unwrap(),
            Stack3d::builder(10, 10, 1)
                .uniform_load(2e-4)
                .build()
                .unwrap(),
        ] {
            let exact = DirectCholesky::new()
                .solve_stack(&stack, NetKind::Power)
                .unwrap();
            let mut engine = PcgEngine::build(&stack).unwrap();
            let mut v = vec![0.0; engine.num_nodes()];
            engine
                .solve(stack.loads(), NetKind::Power, 1e-8, 50_000, &mut v)
                .unwrap();
            let err = crate::residual::max_abs_error(
                &exact.voltages[..stack.num_nodes()],
                &v[..stack.num_nodes()],
            );
            assert!(err < 5e-4, "max error {err}");
        }
    }

    #[test]
    fn engine_budget_exhaustion_keeps_last_iterate() {
        let stack = bench_stack();
        let mut engine = PcgEngine::build(&stack).unwrap();
        let mut v = vec![0.0; engine.num_nodes()];
        let err = engine
            .solve(stack.loads(), NetKind::Power, 1e-14, 1, &mut v)
            .unwrap_err();
        assert!(matches!(err, SolverError::DidNotConverge { .. }));
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(v.iter().any(|&x| x != 0.0), "one iterate was taken");
    }

    #[test]
    fn companion_engine_matches_direct_companion_system() {
        use crate::LinearSolver;
        let stack = Stack3d::builder(12, 12, 3)
            .grid_capacitance(2e-12)
            .decap(1, 5, 5, 8e-11)
            .load_profile(
                voltprop_grid::LoadProfile::UniformRandom {
                    min: 1e-5,
                    max: 1e-3,
                },
                3,
            )
            .build()
            .unwrap();
        let alpha = 2.0 / 1e-11; // 2/h: trapezoidal at h = 10 ps
        let nn = stack.num_nodes();
        let caps = stack.capacitances().unwrap();
        let source: Vec<f64> = (0..nn)
            .map(|i| alpha * caps[i] * (1.6 + 1e-3 * (i % 5) as f64))
            .collect();

        let sys = stack.stamp_dynamic(NetKind::Power, alpha).unwrap();
        let mut rhs = sys.rhs().to_vec();
        for (r, sr) in rhs.iter_mut().zip(sys.restrict(&source)) {
            *r += sr;
        }
        let exact = sys.expand(&DirectCholesky::new().solve(sys.matrix(), &rhs).unwrap().x);

        let mut engine = PcgEngine::build_companion(&stack, alpha).unwrap();
        assert_eq!(engine.precond_name(), "ic0");
        let mut v = vec![0.0; nn];
        let rep = engine
            .solve_with_source(
                stack.loads(),
                NetKind::Power,
                &source,
                1e-10,
                50_000,
                &mut v,
            )
            .unwrap();
        assert!(rep.converged);
        let err = crate::residual::max_abs_error(&exact[..nn], &v);
        assert!(err < 1e-6, "max error {err}");

        // alpha = 0 is bitwise the static engine.
        let mut a0 = PcgEngine::build_companion(&stack, 0.0).unwrap();
        let mut b0 = PcgEngine::build(&stack).unwrap();
        let mut va = vec![0.0; nn];
        let mut vb = vec![0.0; nn];
        a0.solve(stack.loads(), NetKind::Power, 1e-8, 50_000, &mut va)
            .unwrap();
        b0.solve(stack.loads(), NetKind::Power, 1e-8, 50_000, &mut vb)
            .unwrap();
        assert_eq!(va, vb);
    }

    #[test]
    fn engine_rejects_malformed_lengths() {
        let stack = bench_stack();
        let mut engine = PcgEngine::build(&stack).unwrap();
        let mut v = vec![0.0; engine.num_nodes()];
        assert!(matches!(
            engine.solve(&[1e-4; 3], NetKind::Power, 1e-8, 100, &mut v),
            Err(SolverError::Unsupported { .. })
        ));
        let mut short = vec![0.0; 3];
        assert!(matches!(
            engine.solve(stack.loads(), NetKind::Power, 1e-8, 100, &mut short),
            Err(SolverError::Unsupported { .. })
        ));
    }
}
