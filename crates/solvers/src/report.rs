use std::fmt;

/// What a solver did: iteration count, achieved accuracy, and the heap it
/// needed beyond the input matrix.
///
/// `residual` is method-specific: relative 2-norm residual for Krylov
/// methods, maximum voltage update for stationary sweeps, standard error
/// for random walks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveReport {
    /// Iterations (sweeps, Krylov steps, VP outer iterations …).
    pub iterations: usize,
    /// Final convergence measure (see type-level docs).
    pub residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
    /// Estimated peak workspace in bytes: matrices, factors,
    /// preconditioners, and auxiliary vectors allocated by the solver
    /// (excluding the problem statement itself).
    pub workspace_bytes: usize,
}

impl SolveReport {
    /// Workspace in mebibytes, for Table-I-style reporting.
    pub fn workspace_mib(&self) -> f64 {
        self.workspace_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Per-lane outcome of a batched multi-right-hand-side solve.
///
/// Batched entry points ([`TierEngine::solve_batch`] and friends) sweep
/// every lane together but track convergence per lane: a lane freezes as
/// soon as its own update drops below tolerance (so its iterate matches a
/// standalone solve bit for bit), while the remaining lanes keep
/// sweeping. One `LaneReport` per lane records where each one ended up.
///
/// Unlike the single-vector paths, a batched solve does **not** turn a
/// non-converged lane into an error — it reports `converged = false` with
/// the lane's true final residual, so one stubborn right-hand side cannot
/// discard the rest of the batch.
///
/// [`TierEngine::solve_batch`]: crate::TierEngine::solve_batch
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaneReport {
    /// Sweeps this lane ran before freezing (or the full budget).
    pub iterations: usize,
    /// The lane's final per-sweep maximum voltage update (V).
    pub residual: f64,
    /// Whether the lane's update dropped below tolerance within budget.
    pub converged: bool,
}

impl fmt::Display for SolveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations, residual {:.3e}, {}, {:.2} MiB workspace",
            self.iterations,
            self.residual,
            if self.converged {
                "converged"
            } else {
                "NOT converged"
            },
            self.workspace_mib()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mib_conversion() {
        let r = SolveReport {
            workspace_bytes: 3 * 1024 * 1024,
            ..Default::default()
        };
        assert_eq!(r.workspace_mib(), 3.0);
    }

    #[test]
    fn display_mentions_convergence() {
        let mut r = SolveReport {
            iterations: 5,
            residual: 1e-7,
            converged: true,
            workspace_bytes: 0,
        };
        assert!(r.to_string().contains("converged"));
        r.converged = false;
        assert!(r.to_string().contains("NOT"));
    }
}
