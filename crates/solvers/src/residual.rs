//! Accuracy metrics: voltage errors, matrix-free KCL residuals, IR-drop
//! summaries.

use voltprop_grid::{NetKind, Stack3d};

/// Largest absolute difference between two voltage vectors (V).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Example
///
/// ```
/// let e = voltprop_solvers::residual::max_abs_error(&[1.8, 1.75], &[1.8, 1.7501]);
/// assert!((e - 1e-4).abs() < 1e-12);
/// ```
pub fn max_abs_error(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "voltage vector length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Matrix-free KCL residual of a full voltage vector on a stack: the
/// largest absolute nodal current mismatch (A) over all non-pad nodes.
///
/// Verifies solutions from structured solvers (voltage propagation, RB)
/// without assembling the MNA matrix.
///
/// # Panics
///
/// Panics if `v.len() != stack.num_nodes()`.
pub fn kcl_residual_inf(stack: &Stack3d, net: NetKind, v: &[f64]) -> f64 {
    assert_eq!(v.len(), stack.num_nodes(), "voltage vector length mismatch");
    let (w, h, tiers) = (stack.width(), stack.height(), stack.tiers());
    let top = tiers - 1;
    let rail = match net {
        NetKind::Power => stack.vdd(),
        NetKind::Ground => 0.0,
    };
    let load_sign = match net {
        NetKind::Power => -1.0,
        NetKind::Ground => 1.0,
    };
    let g_tsv = 1.0 / stack.tsv_resistance();
    let ideal_pads = stack.pad_resistance() == 0.0;
    let mut worst = 0.0f64;
    for t in 0..tiers {
        let gh = 1.0 / stack.r_horizontal(t);
        let gv = 1.0 / stack.r_vertical(t);
        for y in 0..h {
            for x in 0..w {
                if t == top && ideal_pads && stack.is_pad(x, y) {
                    continue; // pad: current balance closed by the package
                }
                let i = stack.node_index(t, x, y);
                let mut kcl = load_sign * stack.loads()[i];
                if x > 0 {
                    kcl -= gh * (v[i] - v[stack.node_index(t, x - 1, y)]);
                }
                if x + 1 < w {
                    kcl -= gh * (v[i] - v[stack.node_index(t, x + 1, y)]);
                }
                if y > 0 {
                    kcl -= gv * (v[i] - v[stack.node_index(t, x, y - 1)]);
                }
                if y + 1 < h {
                    kcl -= gv * (v[i] - v[stack.node_index(t, x, y + 1)]);
                }
                if stack.is_tsv(x, y) {
                    if t > 0 {
                        kcl -= g_tsv * (v[i] - v[stack.node_index(t - 1, x, y)]);
                    }
                    if t < top {
                        kcl -= g_tsv * (v[i] - v[stack.node_index(t + 1, x, y)]);
                    }
                }
                if t == top && !ideal_pads && stack.is_pad(x, y) {
                    kcl -= (v[i] - rail) / stack.pad_resistance();
                }
                worst = worst.max(kcl.abs());
            }
        }
    }
    worst
}

/// Summary of the IR drop across one supply net.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrDropReport {
    /// Worst drop |rail − V| over all nodes (V).
    pub max_drop: f64,
    /// Average drop (V).
    pub mean_drop: f64,
    /// Flat node index where the worst drop occurs.
    pub worst_node: usize,
}

/// Computes the IR-drop summary of a full voltage vector against a rail
/// voltage.
///
/// # Panics
///
/// Panics if `v` is empty.
pub fn ir_drop_report(rail: f64, v: &[f64]) -> IrDropReport {
    assert!(!v.is_empty(), "voltage vector must be non-empty");
    let mut max_drop = 0.0f64;
    let mut worst = 0usize;
    let mut sum = 0.0f64;
    for (i, &vi) in v.iter().enumerate() {
        let d = (rail - vi).abs();
        sum += d;
        if d > max_drop {
            max_drop = d;
            worst = i;
        }
    }
    IrDropReport {
        max_drop,
        mean_drop: sum / v.len() as f64,
        worst_node: worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectCholesky, StackSolver};

    #[test]
    fn exact_solution_has_tiny_kcl_residual() {
        let s = Stack3d::builder(7, 6, 3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sol = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let r = kcl_residual_inf(&s, NetKind::Power, &sol.voltages);
        assert!(r < 1e-9, "KCL residual {r}");
    }

    #[test]
    fn corrupted_solution_has_large_residual() {
        let s = Stack3d::builder(5, 5, 2)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let mut sol = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        sol.voltages[7] += 0.01;
        assert!(kcl_residual_inf(&s, NetKind::Power, &sol.voltages) > 1e-3);
    }

    #[test]
    fn resistive_pads_residual() {
        let s = Stack3d::builder(5, 5, 2)
            .pad_resistance(0.3)
            .uniform_load(1e-4)
            .build()
            .unwrap();
        let sol = DirectCholesky::new()
            .solve_stack(&s, NetKind::Power)
            .unwrap();
        let r = kcl_residual_inf(&s, NetKind::Power, &sol.voltages[..s.num_nodes()]);
        assert!(r < 1e-9, "KCL residual {r}");
    }

    #[test]
    fn ir_report_finds_worst_node() {
        let rep = ir_drop_report(1.8, &[1.8, 1.75, 1.79]);
        assert!((rep.max_drop - 0.05).abs() < 1e-15);
        assert_eq!(rep.worst_node, 1);
        assert!((rep.mean_drop - 0.02).abs() < 1e-12);
    }
}
