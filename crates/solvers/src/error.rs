use std::error::Error;
use std::fmt;
use voltprop_grid::GridError;
use voltprop_sparse::SparseError;

/// Errors produced by the solver layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// A numerical kernel failed (singular pivot, not positive definite …).
    Sparse(SparseError),
    /// The grid model could not be stamped or is malformed.
    Grid(GridError),
    /// The iteration hit its budget without reaching the tolerance.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Best achieved convergence measure (method-specific).
        residual: f64,
        /// The tolerance that was requested.
        tolerance: f64,
    },
    /// The solver cannot handle this problem shape (e.g. a structured
    /// solver given pads below the top tier).
    Unsupported {
        /// Human-readable description.
        what: String,
    },
    /// An iterative method broke down numerically before reaching its
    /// budget — e.g. conjugate gradients hit `pᵀAp ≤ 0` (the operator is
    /// not positive definite on the Krylov space) or a zero/non-finite
    /// `rᵀM⁻¹r` (the preconditioner is not SPD-applied). Unlike
    /// [`SolverError::DidNotConverge`] this means more iterations cannot
    /// help; the system or preconditioner itself is at fault.
    Breakdown {
        /// The iteration the breakdown was detected at.
        iteration: usize,
        /// The quantity that broke down.
        what: String,
    },
    /// The request's wall-clock deadline passed before the iteration
    /// finished. This is cooperative cancellation, not a numerical
    /// failure: the outer loops check the deadline between iterations
    /// and abandon the solve so the caller (e.g. a serving deadline
    /// budget) gets control back instead of a hung request. The partial
    /// iterate is discarded.
    DeadlineExceeded {
        /// Iterations completed when the expired deadline was detected.
        iterations: usize,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Sparse(e) => write!(f, "sparse kernel failure: {e}"),
            SolverError::Grid(e) => write!(f, "grid model failure: {e}"),
            SolverError::DidNotConverge {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "did not converge in {iterations} iterations \
                 (best {residual:.3e}, target {tolerance:.3e})"
            ),
            SolverError::Unsupported { what } => write!(f, "unsupported problem: {what}"),
            SolverError::Breakdown { iteration, what } => {
                write!(f, "numerical breakdown at iteration {iteration}: {what}")
            }
            SolverError::DeadlineExceeded { iterations } => {
                write!(f, "deadline exceeded after {iterations} iterations")
            }
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolverError::Sparse(e) => Some(e),
            SolverError::Grid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for SolverError {
    fn from(e: SparseError) -> Self {
        SolverError::Sparse(e)
    }
}

impl From<GridError> for SolverError {
    fn from(e: GridError) -> Self {
        SolverError::Grid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = SolverError::from(SparseError::NotSymmetric);
        assert!(e.to_string().contains("sparse"));
        assert!(e.source().is_some());

        let e = SolverError::from(GridError::NoPads);
        assert!(e.source().is_some());

        let e = SolverError::DidNotConverge {
            iterations: 10,
            residual: 1e-3,
            tolerance: 1e-6,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.source().is_none());

        let e = SolverError::Breakdown {
            iteration: 3,
            what: "pᵀAp = -1".into(),
        };
        assert!(e.to_string().contains("breakdown"));
        assert!(e.source().is_none());

        let e = SolverError::DeadlineExceeded { iterations: 5 };
        assert!(e.to_string().contains("deadline"));
        assert!(e.source().is_none());
    }
}
