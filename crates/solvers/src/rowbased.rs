//! The row-based (RB) iterative method of Zhong & Wong (paper ref \[5\]).
//!
//! A power grid tier is a `width`×`height` mesh; RB treats each grid row as
//! one block of a block Gauss–Seidel iteration. Given the (current)
//! voltages of the rows above and below, a row's equations form a
//! tridiagonal system solved *exactly* by the Thomas algorithm — the
//! `5N-4` multiplications and `3(N-1)` additions quoted in the paper.
//!
//! Nodes may be *pinned* (Dirichlet): pads in a planar solve, TSV terminals
//! during the voltage propagation phases. Pinned nodes split a row into
//! independent tridiagonal segments and contribute their voltage to the
//! neighbouring segments' right-hand sides.
//!
//! [`RowBased`] is the reference kernel: it re-eliminates every row each
//! sweep, runs strictly sequentially, and keeps its inner loops in plain
//! scalar f64 on purpose — it is the easy-to-audit baseline the fast
//! paths are tested against. The production path is the prefactored
//! [`TierEngine`] (see [`RowBased::solve_tier_scheduled`]), which
//! factors each segment once, sweeps batched lanes through blocked FMA
//! kernels (optionally in refined f32 — see the
//! [engine docs](crate::engine)), and can run the red-black row coloring
//! across threads.

use crate::engine::{SweepSchedule, TierEngine};
use crate::{SolveReport, SolverError};
use voltprop_sparse::tridiag::TridiagWorkspace;

/// One tier's boundary-value problem for RB sweeps.
///
/// `fixed[i]` pins footprint node `i` at its current value in the voltage
/// vector. `extra_diag[i]` adds conductance from node `i` to *external*
/// potentials (TSV coupling to adjacent tiers, resistive pads); the
/// corresponding `g·V_external` current belongs in `injection[i]`.
#[derive(Debug, Clone, Copy)]
pub struct TierProblem<'a> {
    /// Mesh width (nodes per row).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Horizontal (within-row) segment conductance (S).
    pub g_h: f64,
    /// Vertical (between-row) segment conductance (S).
    pub g_v: f64,
    /// Per-node pin mask (`width*height`).
    pub fixed: &'a [bool],
    /// Per-node additional diagonal conductance (`width*height`).
    pub extra_diag: &'a [f64],
    /// Per-node current injection, including `g·V_external` terms (A).
    pub injection: &'a [f64],
}

impl TierProblem<'_> {
    fn validate(&self) -> Result<(), SolverError> {
        let n = self.width * self.height;
        if self.fixed.len() != n || self.extra_diag.len() != n || self.injection.len() != n {
            return Err(SolverError::Unsupported {
                what: format!(
                    "tier problem arrays must have {n} entries (got {}, {}, {})",
                    self.fixed.len(),
                    self.extra_diag.len(),
                    self.injection.len()
                ),
            });
        }
        if !(self.g_h > 0.0 && self.g_v > 0.0) {
            return Err(SolverError::Unsupported {
                what: "conductances must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Reusable scratch buffers for [`RowBased`] sweeps (one row's tridiagonal
/// system).
#[derive(Debug, Clone, Default)]
pub struct RbWorkspace {
    diag: Vec<f64>,
    off: Vec<f64>,
    rhs: Vec<f64>,
    x: Vec<f64>,
    tri: TridiagWorkspace,
}

impl RbWorkspace {
    /// Creates a workspace for rows up to `width` nodes.
    pub fn new(width: usize) -> Self {
        RbWorkspace {
            diag: Vec::with_capacity(width),
            off: Vec::with_capacity(width),
            rhs: Vec::with_capacity(width),
            x: Vec::with_capacity(width),
            tri: TridiagWorkspace::new(width),
        }
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.diag.capacity() + self.off.capacity() + self.rhs.capacity() + self.x.capacity())
            * std::mem::size_of::<f64>()
            + self.tri.memory_bytes()
    }
}

/// Row-based block Gauss–Seidel with optional successive over-relaxation.
///
/// # Example
///
/// Solve a 4×4 planar grid with the four corners pinned to 1 V:
///
/// ```
/// use voltprop_solvers::{RowBased, TierProblem};
///
/// # fn main() -> Result<(), voltprop_solvers::SolverError> {
/// let (w, h) = (4, 4);
/// let mut fixed = vec![false; w * h];
/// for &c in &[0, 3, 12, 15] { fixed[c] = true; }
/// let mut v = vec![0.0; w * h];
/// for &c in &[0, 3, 12, 15] { v[c] = 1.0; }
/// let problem = TierProblem {
///     width: w, height: h, g_h: 1.0, g_v: 1.0,
///     fixed: &fixed,
///     extra_diag: &vec![0.0; w * h],
///     injection: &vec![0.0; w * h],
/// };
/// let report = RowBased::default().solve_tier(&problem, &mut v)?;
/// assert!(report.converged);
/// // No loads: every interior voltage relaxes to 1 V.
/// assert!(v.iter().all(|&vi| (vi - 1.0).abs() < 1e-5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RowBased {
    /// Over-relaxation factor `ω ∈ (0, 2)`; `1.0` is plain block GS.
    pub omega: f64,
    /// Convergence threshold on the largest per-sweep voltage update (V).
    pub tolerance: f64,
    /// Sweep budget.
    pub max_sweeps: usize,
    /// Alternate sweep direction (down/up) between iterations.
    pub alternate: bool,
}

impl Default for RowBased {
    fn default() -> Self {
        RowBased {
            omega: 1.0,
            tolerance: 1e-7,
            max_sweeps: 100_000,
            alternate: true,
        }
    }
}

impl RowBased {
    /// RB with an explicit SOR factor.
    pub fn with_omega(omega: f64) -> Self {
        RowBased {
            omega,
            ..Default::default()
        }
    }

    /// Iterates sweeps until the largest voltage update drops below the
    /// tolerance, reading the initial guess (and pinned values) from `v`
    /// and leaving the solution there.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent array lengths or
    /// non-positive conductances; [`SolverError::DidNotConverge`] if the
    /// sweep budget runs out.
    pub fn solve_tier(
        &self,
        problem: &TierProblem<'_>,
        v: &mut [f64],
    ) -> Result<SolveReport, SolverError> {
        let mut ws = RbWorkspace::new(problem.width);
        self.solve_tier_with(problem, v, &mut ws)
    }

    /// Like [`RowBased::solve_tier`] but reusing caller-provided scratch
    /// buffers (the voltage propagation method calls this once per layer
    /// per outer iteration).
    ///
    /// # Errors
    ///
    /// See [`RowBased::solve_tier`].
    pub fn solve_tier_with(
        &self,
        problem: &TierProblem<'_>,
        v: &mut [f64],
        ws: &mut RbWorkspace,
    ) -> Result<SolveReport, SolverError> {
        problem.validate()?;
        if !(self.omega > 0.0 && self.omega < 2.0) {
            return Err(SolverError::Unsupported {
                what: format!("SOR omega {} outside (0, 2)", self.omega),
            });
        }
        assert_eq!(v.len(), problem.width * problem.height, "voltage length");
        let mut max_delta = f64::INFINITY;
        let mut sweeps = 0;
        while sweeps < self.max_sweeps {
            let down = !self.alternate || sweeps % 2 == 0;
            max_delta = self.sweep_once(problem, v, ws, down)?;
            sweeps += 1;
            if max_delta < self.tolerance {
                return Ok(SolveReport {
                    iterations: sweeps,
                    residual: max_delta,
                    converged: true,
                    workspace_bytes: ws.memory_bytes(),
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations: sweeps,
            residual: max_delta,
            tolerance: self.tolerance,
        })
    }

    /// Solves the tier through a freshly built prefactored
    /// [`TierEngine`] under the given schedule —
    /// [`SweepSchedule::RedBlack`] runs the row solves of each color
    /// concurrently. One-shot convenience; callers solving the same tier
    /// repeatedly should keep the engine (see [`TierEngine::from_problem`])
    /// to reuse its factorizations across solves.
    ///
    /// # Errors
    ///
    /// See [`RowBased::solve_tier`] and [`TierEngine::new`].
    pub fn solve_tier_scheduled(
        &self,
        problem: &TierProblem<'_>,
        v: &mut [f64],
        schedule: SweepSchedule,
    ) -> Result<SolveReport, SolverError> {
        let mut engine = TierEngine::from_problem(problem, schedule)?;
        engine.solve_with_omega(
            problem.injection,
            v,
            self.tolerance,
            self.max_sweeps,
            self.omega,
        )
    }

    /// One sweep over all rows; returns the largest voltage update.
    ///
    /// # Errors
    ///
    /// See [`RowBased::solve_tier`]. Exposed so callers building composite
    /// iterations (the naive 3-D RB baseline) can interleave their own
    /// boundary updates between sweeps.
    pub fn sweep_once(
        &self,
        problem: &TierProblem<'_>,
        v: &mut [f64],
        ws: &mut RbWorkspace,
        downward: bool,
    ) -> Result<f64, SolverError> {
        let (w, h) = (problem.width, problem.height);
        let mut max_delta = 0.0f64;
        let rows: Box<dyn Iterator<Item = usize>> = if downward {
            Box::new(0..h)
        } else {
            Box::new((0..h).rev())
        };
        for y in rows {
            let delta = self.solve_row(problem, v, ws, y)?;
            max_delta = max_delta.max(delta);
        }
        let _ = w;
        Ok(max_delta)
    }

    /// Solves row `y` exactly (given current neighbouring rows) and applies
    /// the SOR update; returns the largest update in the row.
    fn solve_row(
        &self,
        p: &TierProblem<'_>,
        v: &mut [f64],
        ws: &mut RbWorkspace,
        y: usize,
    ) -> Result<f64, SolverError> {
        let (w, h) = (p.width, p.height);
        let row0 = y * w;
        let mut max_delta = 0.0f64;
        let mut seg_start: Option<usize> = None;
        // Walk the row; flush a tridiagonal segment at each pinned node or
        // at the row end.
        for x in 0..=w {
            let at_end = x == w;
            let pinned = !at_end && p.fixed[row0 + x];
            if !at_end && !pinned {
                if seg_start.is_none() {
                    seg_start = Some(x);
                    ws.diag.clear();
                    ws.off.clear();
                    ws.rhs.clear();
                }
                let i = row0 + x;
                let mut d = p.extra_diag[i];
                let mut b = p.injection[i];
                // Horizontal neighbours.
                if x > 0 {
                    d += p.g_h;
                    if p.fixed[i - 1] {
                        b += p.g_h * v[i - 1];
                    }
                }
                if x + 1 < w {
                    d += p.g_h;
                    if p.fixed[i + 1] {
                        b += p.g_h * v[i + 1];
                    }
                }
                // Vertical neighbours always act as boundary values.
                if y > 0 {
                    d += p.g_v;
                    b += p.g_v * v[i - w];
                }
                if y + 1 < h {
                    d += p.g_v;
                    b += p.g_v * v[i + w];
                }
                if !ws.diag.is_empty() {
                    ws.off.push(-p.g_h);
                }
                ws.diag.push(d);
                ws.rhs.push(b);
            }
            if (at_end || pinned) && seg_start.is_some() {
                let s = seg_start.take().unwrap();
                let len = ws.diag.len();
                ws.x.clear();
                ws.x.resize(len, 0.0);
                ws.tri
                    .solve(&ws.off, &ws.diag, &ws.off, &ws.rhs, &mut ws.x)?;
                for (k, xk) in ws.x.iter().enumerate() {
                    let i = row0 + s + k;
                    let new = v[i] + self.omega * (xk - v[i]);
                    max_delta = max_delta.max((new - v[i]).abs());
                    v[i] = new;
                }
            }
        }
        Ok(max_delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DirectCholesky, LinearSolver};
    use voltprop_sparse::TripletMatrix;

    /// Builds the same tier problem as an assembled matrix for
    /// cross-checking.
    fn assemble(
        p: &TierProblem<'_>,
        v_fixed: &[f64],
    ) -> (Vec<usize>, voltprop_sparse::CsrMatrix, Vec<f64>) {
        let (w, h) = (p.width, p.height);
        let mut map = vec![usize::MAX; w * h];
        let mut free = Vec::new();
        for i in 0..w * h {
            if !p.fixed[i] {
                map[i] = free.len();
                free.push(i);
            }
        }
        let mut t = TripletMatrix::new(free.len(), free.len());
        let mut rhs = vec![0.0; free.len()];
        for (fi, &i) in free.iter().enumerate() {
            let (x, y) = (i % w, i / w);
            let mut d = p.extra_diag[i];
            rhs[fi] += p.injection[i];
            let mut neigh = |j: usize, g: f64, d: &mut f64| {
                *d += g;
                if p.fixed[j] {
                    rhs[fi] += g * v_fixed[j];
                } else {
                    t.push(fi, map[j], -g);
                }
            };
            if x > 0 {
                neigh(i - 1, p.g_h, &mut d);
            }
            if x + 1 < w {
                neigh(i + 1, p.g_h, &mut d);
            }
            if y > 0 {
                neigh(i - w, p.g_v, &mut d);
            }
            if y + 1 < h {
                neigh(i + w, p.g_v, &mut d);
            }
            t.push(fi, fi, d);
        }
        (free, t.to_csr(), rhs)
    }

    fn random_problem(seed: u64, w: usize, h: usize) -> (Vec<bool>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = w * h;
        let mut s = seed.wrapping_add(1);
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let mut fixed = vec![false; n];
        let mut v = vec![0.0; n];
        // Pin ~1/4 of the nodes at voltages near 1.8 (TSV-like pattern).
        for i in 0..n {
            if rnd() < 0.25 {
                fixed[i] = true;
                v[i] = 1.7 + 0.2 * rnd();
            }
        }
        // Ensure at least one pinned node so the problem is nonsingular.
        if !fixed.iter().any(|&f| f) {
            fixed[0] = true;
            v[0] = 1.8;
        }
        let injection: Vec<f64> = (0..n)
            .map(|i| if fixed[i] { 0.0 } else { -1e-4 * rnd() })
            .collect();
        let extra = vec![0.0; n];
        (fixed, v, injection, extra)
    }

    #[test]
    fn matches_direct_solver_on_pinned_grids() {
        for seed in [1, 2, 3] {
            let (w, h) = (9, 7);
            let (fixed, mut v, injection, extra) = random_problem(seed, w, h);
            let p = TierProblem {
                width: w,
                height: h,
                g_h: 50.0,
                g_v: 40.0,
                fixed: &fixed,
                extra_diag: &extra,
                injection: &injection,
            };
            let v_fixed = v.clone();
            let report = RowBased::default().solve_tier(&p, &mut v).unwrap();
            assert!(report.converged);

            let (free, a, rhs) = assemble(&p, &v_fixed);
            let exact = DirectCholesky::new().solve(&a, &rhs).unwrap();
            for (fi, &i) in free.iter().enumerate() {
                assert!(
                    (v[i] - exact.x[fi]).abs() < 1e-5,
                    "seed {seed}, node {i}: RB {} vs direct {}",
                    v[i],
                    exact.x[fi]
                );
            }
        }
    }

    #[test]
    fn sor_accelerates_loose_grids() {
        // Sparse pins (only two corners) make plain GS slow; SOR with
        // ω ≈ 1.8 must converge in fewer sweeps.
        let (w, h) = (24, 24);
        let n = w * h;
        let mut fixed = vec![false; n];
        fixed[0] = true;
        fixed[n - 1] = true;
        let mut v1 = vec![0.0; n];
        v1[0] = 1.8;
        v1[n - 1] = 1.8;
        let mut v2 = v1.clone();
        let injection = vec![-1e-5; n];
        let extra = vec![0.0; n];
        let p = TierProblem {
            width: w,
            height: h,
            g_h: 50.0,
            g_v: 50.0,
            fixed: &fixed,
            extra_diag: &extra,
            injection: &injection,
        };
        let gs = RowBased::default().solve_tier(&p, &mut v1).unwrap();
        let sor = RowBased::with_omega(1.8).solve_tier(&p, &mut v2).unwrap();
        assert!(
            sor.iterations < gs.iterations,
            "SOR {} should beat GS {}",
            sor.iterations,
            gs.iterations
        );
    }

    #[test]
    fn dense_pins_converge_in_few_sweeps() {
        // The VP regime: every other node pinned → convergence in a handful
        // of sweeps regardless of grid size.
        let (w, h) = (40, 40);
        let n = w * h;
        let mut fixed = vec![false; n];
        let mut v = vec![1.8; n];
        for y in (0..h).step_by(2) {
            for x in (0..w).step_by(2) {
                fixed[y * w + x] = true;
            }
        }
        let injection: Vec<f64> = (0..n).map(|i| if fixed[i] { 0.0 } else { -2e-4 }).collect();
        let extra = vec![0.0; n];
        let p = TierProblem {
            width: w,
            height: h,
            g_h: 50.0,
            g_v: 50.0,
            fixed: &fixed,
            extra_diag: &extra,
            injection: &injection,
        };
        let report = RowBased::default().solve_tier(&p, &mut v).unwrap();
        assert!(
            report.iterations <= 12,
            "dense pins should converge fast, took {}",
            report.iterations
        );
    }

    #[test]
    fn fully_pinned_row_is_ok() {
        let (w, h) = (3, 2);
        let fixed = vec![true, true, true, false, false, false];
        let mut v = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let p = TierProblem {
            width: w,
            height: h,
            g_h: 1.0,
            g_v: 1.0,
            fixed: &fixed,
            extra_diag: &[0.0; 6],
            injection: &[0.0; 6],
        };
        RowBased::default().solve_tier(&p, &mut v).unwrap();
        for i in 3..6 {
            assert!((v[i] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn inconsistent_lengths_rejected() {
        let p = TierProblem {
            width: 3,
            height: 2,
            g_h: 1.0,
            g_v: 1.0,
            fixed: &[false; 5],
            extra_diag: &[0.0; 6],
            injection: &[0.0; 6],
        };
        let mut v = vec![0.0; 6];
        assert!(matches!(
            RowBased::default().solve_tier(&p, &mut v),
            Err(SolverError::Unsupported { .. })
        ));
    }

    #[test]
    fn bad_omega_rejected() {
        let fixed = [true, false];
        let p = TierProblem {
            width: 2,
            height: 1,
            g_h: 1.0,
            g_v: 1.0,
            fixed: &fixed,
            extra_diag: &[0.0; 2],
            injection: &[0.0; 2],
        };
        let mut v = vec![1.0, 0.0];
        assert!(matches!(
            RowBased::with_omega(2.5).solve_tier(&p, &mut v),
            Err(SolverError::Unsupported { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_reports() {
        let (w, h) = (16, 16);
        let n = w * h;
        let mut fixed = vec![false; n];
        fixed[0] = true;
        let mut v = vec![0.0; n];
        v[0] = 1.8;
        let p = TierProblem {
            width: w,
            height: h,
            g_h: 50.0,
            g_v: 50.0,
            fixed: &fixed,
            extra_diag: &[0.0; 256],
            injection: &[0.0; 256],
        };
        let solver = RowBased {
            max_sweeps: 2,
            tolerance: 1e-14,
            ..Default::default()
        };
        assert!(matches!(
            solver.solve_tier(&p, &mut v),
            Err(SolverError::DidNotConverge { iterations: 2, .. })
        ));
    }
}
