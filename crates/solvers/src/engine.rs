//! The prefactored row-sweep engine with red-black parallel scheduling.
//!
//! Row-based iteration treats each grid row as one block of a block
//! Gauss–Seidel iteration; pinned nodes cut a row into independent
//! tridiagonal segments. Two facts make the inner kernel fast:
//!
//! 1. **The segment matrices never change.** Across sweeps, outer
//!    iterations, and colors, only the right-hand sides move. The engine
//!    factors every segment once at construction into a shared
//!    [`FactoredSegments`] arena, so a sweep is pure forward/backward
//!    substitution (`3N` multiplies per row instead of the `5N-4` the
//!    paper quotes for a from-scratch Thomas pass) and never allocates.
//! 2. **Rows of one parity are independent.** A row couples only to the
//!    rows directly above and below it, so under a *red-black* coloring
//!    (even rows red, odd rows black) every red row can be solved
//!    simultaneously while the black rows are frozen, and vice versa.
//!    The [`SweepSchedule::RedBlack`] schedule exploits this to run row
//!    solves across OS threads; voltages live in an atomic buffer during
//!    the parallel solve, and barriers separate the two color phases.
//!
//! # Pool lifecycle
//!
//! Multi-threaded solves run on the persistent
//! [`WorkerPool`]: worker threads are spawned
//! once (lazily, on the first parallel solve) and park between solves,
//! so a **warm parallel solve performs no heap allocation** — dispatching
//! a solve is an `Arc` refcount bump and two mutex hand-offs. Engines
//! share the process-global pool by default ([`TierEngine::set_pool`]
//! overrides it for isolation); per-worker substitution scratch is pinned
//! inside the pool and grows to the largest tier a worker has served, so
//! cycling engines of different sizes does not leak or thrash scratch.
//! The legacy per-solve scoped-spawn dispatch is kept behind
//! [`ParDispatch::ScopedSpawn`] purely as a benchmark baseline.
//!
//! # Determinism contract
//!
//! The red-black result is **deterministic in the thread count**: each
//! phase reads only other-color (frozen) and pinned values, so the update
//! of a row is independent of the order rows of its own color are
//! processed. `RedBlack { threads: 1 }` and `RedBlack { threads: 8 }`
//! produce bitwise-identical iterates — on the pool and the scoped
//! dispatch alike — and both converge to the same fixed point as
//! [`SweepSchedule::Sequential`] (the classic alternating row-order
//! sweep), which remains the default and the `parallelism = 1` special
//! case throughout the workspace. Batched solves extend the contract per
//! lane: a lane's iterate is bitwise identical to its standalone solve on
//! every schedule, thread count, and compaction setting.
//!
//! # Active-lane compaction
//!
//! Batched sweeps only pay for **live** lanes. Once lanes freeze
//! (converged, or masked out by the caller), each sweep picks a kernel
//! from the active count `m` out of `k` lanes:
//!
//! * `8m > 3k` — the **full** unit-stride kernel; the arithmetic waste on
//!   frozen lanes is cheaper than gather/scatter.
//! * `m ≤ 3` — the **scalar** per-lane kernel through a strided lane
//!   view; at a few stragglers the batch costs what the equivalent
//!   standalone solves cost.
//! * otherwise — the **compacted** kernel: gather the active lanes'
//!   right-hand sides into an `m`-wide row, substitute, scatter the
//!   updates back.
//!
//! All three kernels run the same per-lane arithmetic, so results are
//! bitwise identical to the uncompacted path (regression-tested), frozen
//! lanes are never touched, and the kernel choice — a pure function of
//! `(m, k)` — cannot perturb thread-count determinism.
//! [`TierEngine::set_lane_compaction`] disables the heuristic (the
//! always-full PR 2 behaviour) for benchmarking. The thresholds were
//! re-measured against the blocked/FMA kernels with the
//! `measure_batch_kernel_crossover` harness (k = 64, 64×64 tier): the
//! full kernel sweeps at a flat ~0.3 ms regardless of `m` while the
//! compacted kernel's gather/scatter scales at ~11 µs per active lane,
//! so the full kernel now wins from ~42 % occupancy down from the
//! scalar-tuned 75 %; the strided scalar fallback sped up the least and
//! carries the tie out to three stragglers.
//!
//! # Blocked lane kernels
//!
//! Every batched inner loop is a **fixed-width blocked loop over the
//! lanes** built from fused multiply-adds: the RHS-assembly, forward-
//! and backward-substitution loops all process `[f64; 8]` (f32: 16)
//! unit-stride chunks with `mul_add`, which the compiler turns into FMA
//! vector code on any target with FMA — no nightly intrinsics. Because
//! the remainder lanes run the *same* per-element fused operation, lane
//! blocking is numerically invisible: batch-of-1 equals solo bitwise at
//! every lane count. Wide batches over long segments are additionally
//! traversed in cache-sized **lane blocks** (`lane_block_width`) so
//! the substitution scratch of a 512-wide row pass stays L2-resident
//! instead of streaming the whole batch through cache per row; lanes
//! are independent, so this is invisible too. The scalar kernel uses
//! the same fused forms, preserving the batch ≡ scalar contract.
//!
//! # Mixed precision
//!
//! [`TierEngine::solve_mixed`] / [`TierEngine::solve_batch_masked_mixed`]
//! run the sweeps in f32 — halving memory traffic on this bandwidth-
//! bound stencil — wrapped in classical iterative refinement: each round
//! evaluates the exact f64 residual, solves the correction system in f32
//! through a prefactored [`FactoredSegmentsF32`] mirror built once at
//! construction, and applies the correction in f64. Refined results meet
//! the same tolerance contract as the f64 path (gated in the
//! cross-solver agreement suite); an exhausted sweep budget reports
//! `converged = false` rather than a silently loose answer.
//!
//! # Row-band sharding
//!
//! [`TierEngine::new_sharded`] splits the tier into contiguous row bands
//! (a [`ShardPlan`]) with 1-row halos. Each shard sweeps its owned rows
//! inside a **private halo-extended voltage buffer** instead of the one
//! global image; between the red and black half-sweeps, each shard
//! refreshes its halo rows of the just-updated color from the owning
//! neighbour's buffer. Because a red row reads only frozen odd rows (and
//! vice versa), the exchanged rows are exactly the values the unsharded
//! red-black sweep would read — sharding is a restructuring of dispatch
//! and memory layout, not of arithmetic, and results are **bitwise
//! identical to the unsharded red-black engine at every shard count and
//! thread count**. Convergence deltas are reduced across shards in shard
//! order with `f64::max` (exact), so per-lane freezing is partition-
//! invariant too. Scalar solves run through the same job as one-lane
//! batches (the batch-of-1 ≡ solo contract above), so single, batched,
//! and sweep-once paths share one sharded code path.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, RwLock};

use crate::pool::{PoolJob, WorkerPool, WorkerScratch};
use crate::rowbased::TierProblem;
use crate::{LaneReport, SolveReport, SolverError};
use voltprop_grid::ShardPlan;
use voltprop_sparse::tridiag::{FactoredSegments, FactoredSegmentsF32};

/// How a [`TierEngine`] orders its row solves within one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepSchedule {
    /// Row-ordered block Gauss–Seidel, alternating sweep direction — the
    /// paper's schedule and the strongest smoother per sweep.
    Sequential,
    /// Red-black row coloring: even rows update first (reading frozen odd
    /// rows), then odd rows. Rows within a color are solved concurrently
    /// on `threads` OS threads; results are identical for every
    /// `threads >= 1`.
    RedBlack {
        /// Worker threads for each color phase (clamped to at least 1).
        threads: usize,
    },
}

impl SweepSchedule {
    /// The schedule a `parallelism` knob maps to: `<= 1` stays on the
    /// sequential path, anything larger sweeps red-black on that many
    /// threads.
    pub fn from_parallelism(parallelism: usize) -> Self {
        if parallelism <= 1 {
            SweepSchedule::Sequential
        } else {
            SweepSchedule::RedBlack {
                threads: parallelism,
            }
        }
    }

    /// Number of worker threads this schedule uses.
    pub fn threads(&self) -> usize {
        match self {
            SweepSchedule::Sequential => 1,
            SweepSchedule::RedBlack { threads } => (*threads).max(1),
        }
    }
}

/// How a [`TierEngine`] hands a parallel solve to its worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParDispatch {
    /// The persistent [`WorkerPool`]: parked
    /// threads, pinned scratch, allocation-free warm dispatch. The
    /// default.
    #[default]
    Pool,
    /// One `std::thread::scope` spawn per solve (the pre-pool behaviour,
    /// with engine-owned reusable scratch like the old per-engine
    /// scratch vectors). Kept as a benchmark baseline — results are
    /// bitwise identical to [`ParDispatch::Pool`], only dispatch cost
    /// differs.
    ScopedSpawn,
}

/// One tridiagonal row segment between pinned nodes.
#[derive(Debug, Clone, Copy)]
struct Segment {
    row: u32,
    start: u32,
    len: u32,
    /// Offset of this segment's coefficients in the factor arena.
    offset: u32,
}

/// Worker status codes for the persistent parallel solve loop.
const RUN: usize = 0;
const DONE: usize = 1;
const BUDGET: usize = 2;

/// At or below this many active lanes a batched sweep falls back to the
/// scalar per-lane kernel (see the module docs for the full crossover).
/// Measured against the blocked/FMA kernels: the compacted kernel's
/// gather/scatter overhead only amortizes from four active lanes up.
const SCALAR_LANE_CROSSOVER: usize = 3;

/// Cache budget for one segment's substitution scratch in the full
/// batched kernel. Wide batches over long rows are traversed in lane
/// blocks sized so the forward-intermediate scratch of a whole segment
/// pass stays L2-resident (a 512-wide row × 64 lanes of `f64` scratch
/// is 256 KiB — it would thrash a typical 256 KiB–1 MiB L2 together
/// with the voltage and injection streams). Lanes are independent, so
/// the block boundaries are numerically invisible.
const LANE_BLOCK_CACHE_BYTES: usize = 128 * 1024;

/// Lane-block granularity of the cache-blocked traversal (one AVX-512
/// register of `f64`; blocks are multiples of this).
const MIN_LANE_BLOCK: usize = 8;

/// Lane-block width of the cache-blocked full batched kernel: the
/// widest multiple of [`MIN_LANE_BLOCK`] whose `len`-row scratch fits
/// [`LANE_BLOCK_CACHE_BYTES`], clamped to `[MIN_LANE_BLOCK, k]`. A pure
/// function of `(len, k)`, so every thread blocks identically.
fn lane_block_width(len: usize, k: usize, elem_bytes: usize) -> usize {
    let fit = LANE_BLOCK_CACHE_BYTES / (len.max(1) * elem_bytes);
    let blk = (fit / MIN_LANE_BLOCK) * MIN_LANE_BLOCK;
    blk.max(MIN_LANE_BLOCK).min(k)
}

/// Relative stagnation cut-off of one mixed-precision correction solve:
/// a lane stops sweeping its `f32` correction once the per-sweep update
/// drops below this fraction of the round's peak update — about the
/// point where `f32` rounding stops the iterate from improving — and
/// hands back to the `f64` residual refinement loop.
const MIXED_STAGNATION_REL: f32 = 1e-5;

/// The batched sweep kernel selected for one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchKernel {
    /// Unit-stride sweep over all `k` lanes, frozen lanes gated at
    /// write-back.
    Full,
    /// Gather → sweep → scatter over the active lanes only.
    Compact,
    /// Per-lane scalar kernel through a strided lane view.
    Scalar,
}

/// The compaction crossover: a pure function of the active count, so
/// every worker thread (and every thread count) picks the same kernel.
fn choose_batch_kernel(active: usize, lanes: usize, compaction: bool) -> BatchKernel {
    if !compaction || 8 * active > 3 * lanes {
        BatchKernel::Full
    } else if active <= SCALAR_LANE_CROSSOVER {
        BatchKernel::Scalar
    } else {
        BatchKernel::Compact
    }
}

/// The immutable per-tier structure shared between the engine and its
/// pool jobs: geometry, factors, and the per-thread work partition.
#[derive(Debug)]
struct Topo {
    width: usize,
    height: usize,
    g_h: f64,
    g_v: f64,
    threads: usize,
    fixed: Arc<[bool]>,
    /// All segments in natural (row-major) order.
    segments: Vec<Segment>,
    /// Indices into `segments` for even (red) and odd (black) rows.
    red_idx: Vec<u32>,
    black_idx: Vec<u32>,
    /// Per-thread index ranges into `red_idx` / `black_idx`, balanced by
    /// node count.
    red_chunks: Vec<Range<usize>>,
    black_chunks: Vec<Range<usize>>,
    factors: FactoredSegments,
    /// `f32` mirror of `factors`, built once at construction for the
    /// mixed-precision sweep path.
    factors32: FactoredSegmentsF32,
    /// Per-node matrix diagonal (0 at pinned nodes). The sweeps never
    /// need it — it is baked into `factors` — but the mixed-precision
    /// path evaluates true `f64` residuals `r = b - A v` between its
    /// `f32` correction solves, which needs the diagonal explicitly.
    diag: Vec<f64>,
}

impl Topo {
    fn n(&self) -> usize {
        self.width * self.height
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.segments.len() * size_of::<Segment>()
            + (self.red_idx.len() + self.black_idx.len()) * size_of::<u32>()
            + (self.red_chunks.len() + self.black_chunks.len()) * size_of::<Range<usize>>()
            + self.factors.memory_bytes()
            + self.factors32.memory_bytes()
            + self.diag.capacity() * size_of::<f64>()
            + self.fixed.len()
    }
}

/// Per-solve inputs of a parallel scalar solve, written by the
/// dispatching engine before the job starts and read once per worker.
#[derive(Debug)]
struct ParInput {
    injection: Vec<f64>,
    omega: f64,
    tolerance: f64,
    max_sweeps: usize,
}

/// The pool job of a scalar (single right-hand-side) parallel solve.
/// Built once per engine and reused by every solve, so dispatching is
/// allocation-free.
#[derive(Debug)]
struct ParShared {
    topo: Arc<Topo>,
    input: RwLock<ParInput>,
    /// Atomic voltage image (`n` slots).
    atomic_v: Vec<AtomicU64>,
    /// Per-thread max-|update| slots for the reduction.
    deltas: Vec<AtomicU64>,
    status: AtomicUsize,
    sweeps_done: AtomicUsize,
    final_delta: AtomicU64,
    barrier: Barrier,
}

impl ParShared {
    fn new(topo: Arc<Topo>) -> Self {
        let n = topo.n();
        let threads = topo.threads;
        ParShared {
            topo,
            input: RwLock::new(ParInput {
                injection: vec![0.0; n],
                omega: 1.0,
                tolerance: 0.0,
                max_sweeps: 0,
            }),
            atomic_v: (0..n).map(|_| AtomicU64::new(0)).collect(),
            deltas: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            status: AtomicUsize::new(RUN),
            sweeps_done: AtomicUsize::new(0),
            final_delta: AtomicU64::new(0),
            barrier: Barrier::new(threads),
        }
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let input = self.input.read().expect("par input lock");
        (self.atomic_v.len() + self.deltas.len()) * size_of::<AtomicU64>()
            + input.injection.capacity() * size_of::<f64>()
    }
}

/// The per-thread loop of a scalar parallel solve. Thread 0 doubles as
/// the reducer that decides convergence between sweeps. Every sweep
/// costs four barrier waits: red→black, black→delta-publish,
/// publish→reduce, reduce→next sweep.
impl PoolJob for ParShared {
    fn run(&self, tid: usize, ws: &mut WorkerScratch) {
        let topo = &*self.topo;
        let input = self.input.read().expect("par input lock");
        let injection: &[f64] = &input.injection;
        ws.ensure(topo.factors.max_segment_len(), 0);
        let scratch = &mut ws.f[..];
        loop {
            let mut local = 0.0f64;
            for phase in 0..2 {
                let (idx, chunk) = if phase == 0 {
                    (&topo.red_idx, &topo.red_chunks[tid])
                } else {
                    (&topo.black_idx, &topo.black_chunks[tid])
                };
                let mut view = AtomicView(&self.atomic_v);
                for &si in &idx[chunk.clone()] {
                    local = local.max(solve_segment(
                        topo,
                        topo.segments[si as usize],
                        injection,
                        input.omega,
                        scratch,
                        &mut view,
                    ));
                }
                // All writes of this color must land before any thread
                // reads them in the next phase.
                self.barrier.wait();
            }
            self.deltas[tid].store(local.to_bits(), Ordering::Relaxed);
            self.barrier.wait();
            if tid == 0 {
                let delta = self
                    .deltas
                    .iter()
                    .take(topo.threads)
                    .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                    .fold(0.0f64, f64::max);
                self.final_delta.store(delta.to_bits(), Ordering::Relaxed);
                let done = self.sweeps_done.fetch_add(1, Ordering::Relaxed) + 1;
                if delta < input.tolerance {
                    self.status.store(DONE, Ordering::Relaxed);
                } else if done >= input.max_sweeps {
                    self.status.store(BUDGET, Ordering::Relaxed);
                }
            }
            self.barrier.wait();
            if self.status.load(Ordering::Relaxed) != RUN {
                return;
            }
        }
    }
}

/// Per-solve inputs of a parallel batched solve.
#[derive(Debug)]
struct BatchInput {
    /// Node-major/lane-minor right-hand sides, `n * k`.
    injection: Vec<f64>,
    omega: f64,
    tolerance: f64,
    max_sweeps: usize,
}

/// The pool job of a parallel batched solve, sized for a fixed lane
/// count `k`; rebuilt only when `k` changes.
#[derive(Debug)]
struct BatchShared {
    topo: Arc<Topo>,
    k: usize,
    input: RwLock<BatchInput>,
    /// Atomic voltage image (`n * k` slots, node-major/lane-minor).
    atomic_v: Vec<AtomicU64>,
    /// `threads × k` per-sweep delta slots for the reduction.
    deltas: Vec<AtomicU64>,
    /// Per-lane active flags (thread 0 is the only writer).
    active: Vec<AtomicBool>,
    /// Compact list of active lane indices (first `n_active` valid).
    active_ids: Vec<AtomicU32>,
    n_active: AtomicUsize,
    /// Per-lane outcome slots, copied into the caller's [`LaneReport`]s
    /// after the job drains.
    lane_iters: Vec<AtomicUsize>,
    lane_residual: Vec<AtomicU64>,
    lane_converged: Vec<AtomicBool>,
    sweeps_done: AtomicUsize,
    status: AtomicUsize,
    compaction: AtomicBool,
    barrier: Barrier,
}

impl BatchShared {
    fn new(topo: Arc<Topo>, k: usize) -> Self {
        let n = topo.n();
        let threads = topo.threads;
        BatchShared {
            topo,
            k,
            input: RwLock::new(BatchInput {
                injection: vec![0.0; n * k],
                omega: 1.0,
                tolerance: 0.0,
                max_sweeps: 0,
            }),
            atomic_v: (0..n * k).map(|_| AtomicU64::new(0)).collect(),
            deltas: (0..threads * k).map(|_| AtomicU64::new(0)).collect(),
            active: (0..k).map(|_| AtomicBool::new(true)).collect(),
            active_ids: (0..k).map(|_| AtomicU32::new(0)).collect(),
            n_active: AtomicUsize::new(0),
            lane_iters: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            lane_residual: (0..k).map(|_| AtomicU64::new(0)).collect(),
            lane_converged: (0..k).map(|_| AtomicBool::new(false)).collect(),
            sweeps_done: AtomicUsize::new(0),
            status: AtomicUsize::new(RUN),
            compaction: AtomicBool::new(true),
            barrier: Barrier::new(threads),
        }
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let input = self.input.read().expect("batch input lock");
        (self.atomic_v.len() + self.deltas.len() + self.lane_residual.len())
            * size_of::<AtomicU64>()
            + input.injection.capacity() * size_of::<f64>()
            + self.active_ids.len() * size_of::<AtomicU32>()
            + self.lane_iters.len() * size_of::<AtomicUsize>()
            + self.active.len()
            + self.lane_converged.len()
    }
}

/// The per-thread loop of a parallel batched solve. Mirrors the scalar
/// job's barrier structure; thread 0 reduces the per-lane deltas between
/// sweeps, decides which lanes freeze, and republishes the compact
/// active-lane list, so freezing — and therefore every lane's iterate —
/// is deterministic in the thread count.
impl PoolJob for BatchShared {
    fn run(&self, tid: usize, ws: &mut WorkerScratch) {
        let topo = &*self.topo;
        let k = self.k;
        let input = self.input.read().expect("batch input lock");
        let injection: &[f64] = &input.injection;
        ws.ensure(topo.factors.max_segment_len() * k, k);
        let WorkerScratch {
            f,
            active,
            delta,
            ids,
            ..
        } = ws;
        let scratch = &mut f[..];
        let active = &mut active[..k];
        let delta = &mut delta[..k];
        let ids = &mut ids[..k];
        let compaction = self.compaction.load(Ordering::Relaxed);
        loop {
            // The lane-active state only changes while every worker is
            // parked at the post-reduce barrier, so relaxed refreshes
            // here are safe — and every thread sees the same snapshot.
            let m = self.n_active.load(Ordering::Relaxed);
            for (id, slot) in ids[..m].iter_mut().zip(&self.active_ids) {
                *id = slot.load(Ordering::Relaxed);
            }
            for (a, slot) in active.iter_mut().zip(&self.active) {
                *a = slot.load(Ordering::Relaxed);
            }
            delta.fill(0.0);
            let kernel = choose_batch_kernel(m, k, compaction);
            for phase in 0..2 {
                let (idx, chunk) = if phase == 0 {
                    (&topo.red_idx, &topo.red_chunks[tid])
                } else {
                    (&topo.black_idx, &topo.black_chunks[tid])
                };
                let mut view = AtomicView(&self.atomic_v);
                for &si in &idx[chunk.clone()] {
                    batch_segment_dispatch(
                        kernel,
                        topo,
                        topo.segments[si as usize],
                        injection,
                        input.omega,
                        k,
                        active,
                        &ids[..m],
                        scratch,
                        &mut view,
                        delta,
                    );
                }
                // All writes of this color must land before any thread
                // reads them in the next phase.
                self.barrier.wait();
            }
            for (j, &d) in delta.iter().enumerate() {
                self.deltas[tid * k + j].store(d.to_bits(), Ordering::Relaxed);
            }
            self.barrier.wait();
            if tid == 0 {
                let sweep = self.sweeps_done.fetch_add(1, Ordering::Relaxed) + 1;
                let mut live = 0usize;
                for j in 0..k {
                    if self.lane_converged[j].load(Ordering::Relaxed) {
                        continue;
                    }
                    let d = (0..topo.threads)
                        .map(|t| f64::from_bits(self.deltas[t * k + j].load(Ordering::Relaxed)))
                        .fold(0.0f64, f64::max);
                    self.lane_iters[j].store(sweep, Ordering::Relaxed);
                    self.lane_residual[j].store(d.to_bits(), Ordering::Relaxed);
                    if d < input.tolerance {
                        self.lane_converged[j].store(true, Ordering::Relaxed);
                        self.active[j].store(false, Ordering::Relaxed);
                    } else {
                        live += 1;
                    }
                }
                let mut next_m = 0usize;
                for j in 0..k {
                    if self.active[j].load(Ordering::Relaxed) {
                        self.active_ids[next_m].store(j as u32, Ordering::Relaxed);
                        next_m += 1;
                    }
                }
                self.n_active.store(next_m, Ordering::Relaxed);
                if live == 0 {
                    self.status.store(DONE, Ordering::Relaxed);
                } else if sweep >= input.max_sweeps {
                    self.status.store(BUDGET, Ordering::Relaxed);
                }
            }
            self.barrier.wait();
            if self.status.load(Ordering::Relaxed) != RUN {
                return;
            }
        }
    }
}

/// One row band of a sharded tier, resolved from the [`ShardPlan`]
/// descriptor into execution terms: owned/halo row ranges plus the
/// owned segments pre-split by sweep color.
#[derive(Debug)]
struct ShardBandExec {
    /// First owned row.
    y0: usize,
    /// One past the last owned row.
    y1: usize,
    /// First halo-extended row (`y0 - 1` when a shard sits above).
    lo: usize,
    /// One past the last halo-extended row.
    hi: usize,
    /// Owned even-row segment indices into `Topo::segments`, ascending.
    red: Vec<u32>,
    /// Owned odd-row segment indices, ascending.
    black: Vec<u32>,
}

/// The frozen execution layout of a sharded tier: the per-band segment
/// lists and a contiguous shard→thread assignment balanced by owned
/// node count. Shared (via `Arc`) between the scalar and batched shard
/// jobs and across [`TierEngine::fork`]s.
#[derive(Debug)]
struct ShardLayout {
    bands: Vec<ShardBandExec>,
    /// Per-thread contiguous shard ranges (`chunks.len() == threads`).
    chunks: Vec<Range<usize>>,
}

impl ShardLayout {
    fn build(topo: &Topo, shards: usize) -> ShardLayout {
        let plan = ShardPlan::new(topo.height, shards);
        let bands: Vec<ShardBandExec> = plan
            .bands()
            .iter()
            .map(|b| {
                let mut red = Vec::new();
                let mut black = Vec::new();
                for (i, seg) in topo.segments.iter().enumerate() {
                    let y = seg.row as usize;
                    if y >= b.y0() && y < b.y1() {
                        if y % 2 == 0 {
                            red.push(i as u32);
                        } else {
                            black.push(i as u32);
                        }
                    }
                }
                ShardBandExec {
                    y0: b.y0(),
                    y1: b.y1(),
                    lo: b.lo(),
                    hi: b.hi(),
                    red,
                    black,
                }
            })
            .collect();
        // Contiguous shard→thread split balanced by owned node count,
        // same greedy rule as `balance_chunks` over segments.
        let weights: Vec<usize> = bands
            .iter()
            .map(|b| {
                b.red
                    .iter()
                    .chain(&b.black)
                    .map(|&i| topo.segments[i as usize].len as usize)
                    .sum()
            })
            .collect();
        let total: usize = weights.iter().sum();
        let threads = topo.threads;
        let mut chunks = Vec::with_capacity(threads);
        let mut pos = 0usize;
        let mut acc = 0usize;
        for t in 0..threads {
            let begin = pos;
            if t + 1 == threads {
                pos = bands.len();
            } else {
                let target = total * (t + 1) / threads;
                while pos < bands.len() && acc < target {
                    acc += weights[pos];
                    pos += 1;
                }
            }
            chunks.push(begin..pos);
        }
        ShardLayout { bands, chunks }
    }

    fn num_shards(&self) -> usize {
        self.bands.len()
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.bands
            .iter()
            .map(|b| (b.red.capacity() + b.black.capacity()) * size_of::<u32>())
            .sum::<usize>()
            + self.bands.capacity() * size_of::<ShardBandExec>()
            + self.chunks.capacity() * size_of::<Range<usize>>()
    }
}

/// The pool job of a sharded solve, sized for a fixed lane count `k`
/// (scalar solves run as `k = 1` — the batch-of-1 ≡ solo contract makes
/// that bitwise-free). Each shard owns a private halo-extended voltage
/// image; the job interleaves color half-sweeps with halo exchanges and
/// reduces convergence deltas **across shards in shard order**, so the
/// outcome is invariant in both the thread and the shard count.
#[derive(Debug)]
struct ShardShared {
    topo: Arc<Topo>,
    layout: Arc<ShardLayout>,
    k: usize,
    input: RwLock<BatchInput>,
    /// Per-shard halo-extended voltage images, `(hi - lo) * width * k`
    /// slots each, node-major/lane-minor in halo-local coordinates.
    bufs: Vec<Vec<AtomicU64>>,
    /// `shards × k` per-sweep delta slots; reduced in shard order.
    deltas: Vec<AtomicU64>,
    active: Vec<AtomicBool>,
    active_ids: Vec<AtomicU32>,
    n_active: AtomicUsize,
    lane_iters: Vec<AtomicUsize>,
    lane_residual: Vec<AtomicU64>,
    lane_converged: Vec<AtomicBool>,
    sweeps_done: AtomicUsize,
    status: AtomicUsize,
    compaction: AtomicBool,
    barrier: Barrier,
}

impl ShardShared {
    fn new(topo: Arc<Topo>, layout: Arc<ShardLayout>, k: usize) -> Self {
        let n = topo.n();
        let wk = topo.width * k;
        let shards = layout.num_shards();
        let bufs = layout
            .bands
            .iter()
            .map(|b| (0..(b.hi - b.lo) * wk).map(|_| AtomicU64::new(0)).collect())
            .collect();
        ShardShared {
            input: RwLock::new(BatchInput {
                injection: vec![0.0; n * k],
                omega: 1.0,
                tolerance: 0.0,
                max_sweeps: 0,
            }),
            bufs,
            deltas: (0..shards * k).map(|_| AtomicU64::new(0)).collect(),
            active: (0..k).map(|_| AtomicBool::new(true)).collect(),
            active_ids: (0..k).map(|_| AtomicU32::new(0)).collect(),
            n_active: AtomicUsize::new(0),
            lane_iters: (0..k).map(|_| AtomicUsize::new(0)).collect(),
            lane_residual: (0..k).map(|_| AtomicU64::new(0)).collect(),
            lane_converged: (0..k).map(|_| AtomicBool::new(false)).collect(),
            sweeps_done: AtomicUsize::new(0),
            status: AtomicUsize::new(RUN),
            compaction: AtomicBool::new(true),
            barrier: Barrier::new(topo.threads),
            layout,
            topo,
            k,
        }
    }

    /// Refreshes shard `s`'s halo rows whose color matches `phase`
    /// (0 = even/red, 1 = odd/black) from the owning neighbours'
    /// buffers. Pull model: during an exchange, shard `s`'s buffer is
    /// written only at `s`'s halo rows and read only at `s`'s owned
    /// rows, so concurrent exchanges on different threads touch
    /// disjoint slots (the surrounding barriers order them against the
    /// sweeps).
    fn exchange_halos(&self, s: usize, phase: usize) {
        let band = &self.layout.bands[s];
        if band.lo < band.y0 && band.lo % 2 == phase {
            self.copy_halo_row(s, s - 1, band.lo);
        }
        if band.hi > band.y1 && band.y1 % 2 == phase {
            self.copy_halo_row(s, s + 1, band.y1);
        }
    }

    /// Copies global row `y` (owned by shard `src`) into shard `dst`'s
    /// halo image.
    fn copy_halo_row(&self, dst: usize, src: usize, y: usize) {
        let wk = self.topo.width * self.k;
        let row0 = y * wk;
        let d0 = row0 - self.layout.bands[dst].lo * wk;
        let s0 = row0 - self.layout.bands[src].lo * wk;
        for (d, s) in self.bufs[dst][d0..d0 + wk]
            .iter()
            .zip(&self.bufs[src][s0..s0 + wk])
        {
            d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let input = self.input.read().expect("shard input lock");
        let buf_slots: usize = self.bufs.iter().map(Vec::capacity).sum();
        (buf_slots + self.deltas.len() + self.lane_residual.len()) * size_of::<AtomicU64>()
            + input.injection.capacity() * size_of::<f64>()
            + self.active_ids.len() * size_of::<AtomicU32>()
            + self.lane_iters.len() * size_of::<AtomicUsize>()
            + self.active.len()
            + self.lane_converged.len()
    }
}

/// The per-thread loop of a sharded solve. Five barriers per sweep:
/// red half-sweep → barrier → even-halo exchange → barrier → black
/// half-sweep → barrier → odd-halo exchange → barrier → reduce/freeze →
/// barrier. A color's halo rows are exchanged immediately after that
/// color updates, so the next half-sweep reads exactly the values the
/// unsharded red-black sweep would.
impl PoolJob for ShardShared {
    fn run(&self, tid: usize, ws: &mut WorkerScratch) {
        let topo = &*self.topo;
        let lay = &*self.layout;
        let k = self.k;
        let wk = topo.width * k;
        let input = self.input.read().expect("shard input lock");
        let injection: &[f64] = &input.injection;
        ws.ensure(topo.factors.max_segment_len() * k, k);
        let WorkerScratch {
            f,
            active,
            delta,
            ids,
            ..
        } = ws;
        let scratch = &mut f[..];
        let active = &mut active[..k];
        let delta = &mut delta[..k];
        let ids = &mut ids[..k];
        let compaction = self.compaction.load(Ordering::Relaxed);
        let mine = lay.chunks[tid].clone();
        loop {
            let m = self.n_active.load(Ordering::Relaxed);
            for (id, slot) in ids[..m].iter_mut().zip(&self.active_ids) {
                *id = slot.load(Ordering::Relaxed);
            }
            for (a, slot) in active.iter_mut().zip(&self.active) {
                *a = slot.load(Ordering::Relaxed);
            }
            let kernel = choose_batch_kernel(m, k, compaction);
            for phase in 0..2 {
                for s in mine.clone() {
                    let band = &lay.bands[s];
                    let segs = if phase == 0 { &band.red } else { &band.black };
                    delta.fill(0.0);
                    let mut view = ShardAtomicView {
                        buf: &self.bufs[s],
                        off: band.lo * wk,
                    };
                    for &si in segs {
                        // Scalar solves take the same `solve_segment`
                        // kernel as the unsharded parallel path (the
                        // batch-of-1 dispatch is bitwise identical but
                        // pays lane-indirection the scalar kernel
                        // doesn't).
                        if k == 1 {
                            delta[0] = delta[0].max(solve_segment(
                                topo,
                                topo.segments[si as usize],
                                injection,
                                input.omega,
                                scratch,
                                &mut view,
                            ));
                        } else {
                            batch_segment_dispatch(
                                kernel,
                                topo,
                                topo.segments[si as usize],
                                injection,
                                input.omega,
                                k,
                                active,
                                &ids[..m],
                                scratch,
                                &mut view,
                                delta,
                            );
                        }
                    }
                    // Red overwrites the shard's slots (self-resetting
                    // between sweeps), black folds its maxima in.
                    for (j, &d) in delta.iter().enumerate() {
                        let slot = &self.deltas[s * k + j];
                        let bits = if phase == 0 {
                            d.to_bits()
                        } else {
                            f64::from_bits(slot.load(Ordering::Relaxed))
                                .max(d)
                                .to_bits()
                        };
                        slot.store(bits, Ordering::Relaxed);
                    }
                }
                self.barrier.wait();
                for s in mine.clone() {
                    self.exchange_halos(s, phase);
                }
                self.barrier.wait();
            }
            if tid == 0 {
                let sweep = self.sweeps_done.fetch_add(1, Ordering::Relaxed) + 1;
                let shards = lay.num_shards();
                let mut live = 0usize;
                for j in 0..k {
                    if self.lane_converged[j].load(Ordering::Relaxed) {
                        continue;
                    }
                    let d = (0..shards)
                        .map(|s| f64::from_bits(self.deltas[s * k + j].load(Ordering::Relaxed)))
                        .fold(0.0f64, f64::max);
                    self.lane_iters[j].store(sweep, Ordering::Relaxed);
                    self.lane_residual[j].store(d.to_bits(), Ordering::Relaxed);
                    if d < input.tolerance {
                        self.lane_converged[j].store(true, Ordering::Relaxed);
                        self.active[j].store(false, Ordering::Relaxed);
                    } else {
                        live += 1;
                    }
                }
                let mut next_m = 0usize;
                for j in 0..k {
                    if self.active[j].load(Ordering::Relaxed) {
                        self.active_ids[next_m].store(j as u32, Ordering::Relaxed);
                        next_m += 1;
                    }
                }
                self.n_active.store(next_m, Ordering::Relaxed);
                if live == 0 {
                    self.status.store(DONE, Ordering::Relaxed);
                } else if sweep >= input.max_sweeps {
                    self.status.store(BUDGET, Ordering::Relaxed);
                }
            }
            self.barrier.wait();
            if self.status.load(Ordering::Relaxed) != RUN {
                return;
            }
        }
    }
}

/// Sharded-dispatch state of a [`TierEngine`]: the frozen layout plus
/// the prebuilt scalar (`k = 1`) job and the lazily (re)built batched
/// job, mirroring `par` / `batch_par` on the unsharded side.
#[derive(Debug)]
struct ShardState {
    layout: Arc<ShardLayout>,
    /// `k = 1` job serving `solve` / `sweep_once`, built eagerly so warm
    /// scalar solves never allocate.
    scalar: Arc<ShardShared>,
    /// Batched job, rebuilt when the lane count changes (like
    /// `batch_par`).
    batch: Option<Arc<ShardShared>>,
}

/// Single-threaded state for batched (multi right-hand-side) solves.
///
/// Sized on the first [`TierEngine::solve_batch`] call for a given lane
/// count; later calls with the same count reuse every buffer, so warm
/// batched solves stay allocation-free on the single-threaded schedules.
#[derive(Debug, Default)]
struct BatchState {
    /// Lane count the buffers below are sized for (0 = never sized).
    lanes: usize,
    /// Substitution scratch, `max_segment_len * lanes`.
    scratch: Vec<f64>,
    /// Per-lane active flags.
    active: Vec<bool>,
    /// Per-lane max-|update| accumulators.
    delta: Vec<f64>,
    /// Compact active-lane index list (first `n_active` valid).
    ids: Vec<u32>,
}

impl BatchState {
    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.scratch.capacity() + self.delta.capacity()) * size_of::<f64>()
            + self.active.capacity()
            + self.ids.capacity() * size_of::<u32>()
    }
}

/// Lane buffers of the mixed-precision (`f32` sweeps + `f64` residual
/// refinement) solve path. The path works entirely in **residual form**
/// — every round sweeps an `f32` *correction* image against an `f32`
/// copy of the true `f64` residual, so no `f32` copy of the voltages or
/// right-hand sides is ever needed. Grow-only: buffers are sized to the
/// largest `(n, lane count)` the engine has served, so alternating
/// single and batched mixed solves stay allocation-free once warm.
#[derive(Debug, Default)]
struct MixedState {
    /// `f32` correction image of the current refinement round,
    /// node-major/lane-minor (zero at pinned nodes, so pin terms vanish
    /// from the correction equation).
    d32: Vec<f32>,
    /// `f32` residual right-hand sides of the current round.
    r32: Vec<f32>,
    /// `f32` forward-substitution scratch, `max_segment_len * lanes`.
    scratch32: Vec<f32>,
    /// Per-lane max-|update| accumulators of one `f32` sweep.
    dmax32: Vec<f32>,
    /// Per-lane peak sweep update within the current round (for the
    /// stagnation cut-off).
    peak32: Vec<f32>,
    /// Per-lane live flags across refinement rounds.
    active: Vec<bool>,
    /// Per-lane live flags within one round's correction solve.
    round_active: Vec<bool>,
    /// One node's worth of `f64` residual accumulators (`k` lanes) —
    /// the residual is accumulated here in full precision before the
    /// single narrowing to `f32`.
    rrow: Vec<f64>,
}

impl MixedState {
    /// Grows every buffer to serve `k` lanes of an `n`-node tier with
    /// segments up to `seg_len` (never shrinks).
    fn ensure(&mut self, n: usize, seg_len: usize, k: usize) {
        let nk = n * k;
        if self.d32.len() < nk {
            self.d32.resize(nk, 0.0);
            self.r32.resize(nk, 0.0);
        }
        if self.scratch32.len() < seg_len * k {
            self.scratch32.resize(seg_len * k, 0.0);
        }
        if self.dmax32.len() < k {
            self.dmax32.resize(k, 0.0);
            self.peak32.resize(k, 0.0);
            self.active.resize(k, false);
            self.round_active.resize(k, false);
        }
        if self.rrow.len() < k {
            self.rrow.resize(k, 0.0);
        }
    }

    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.d32.capacity()
            + self.r32.capacity()
            + self.scratch32.capacity()
            + self.dmax32.capacity()
            + self.peak32.capacity())
            * size_of::<f32>()
            + self.rrow.capacity() * size_of::<f64>()
            + self.active.capacity()
            + self.round_active.capacity()
    }
}

/// A tier's prefactored row-sweep engine.
///
/// Built once per tier, reused across every sweep and outer iteration:
/// after construction the single-threaded schedules perform **no heap
/// allocation** on any solve or sweep path. The multi-threaded red-black
/// path runs on the persistent [`WorkerPool`],
/// so after the pool's one-time warm-up a parallel
/// [`TierEngine::solve`] (or [`TierEngine::solve_batch`]) is
/// allocation-free too — dispatching a solve to the parked workers costs
/// two mutex hand-offs instead of the former per-solve scoped thread
/// spawn.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use voltprop_solvers::{SweepSchedule, TierEngine};
///
/// # fn main() -> Result<(), voltprop_solvers::SolverError> {
/// let (w, h) = (8, 8);
/// let mut fixed = vec![false; w * h];
/// fixed[0] = true; // one pinned corner
/// let mut engine = TierEngine::new(
///     w, h, 1.0, 1.0, Arc::from(fixed), None,
///     SweepSchedule::RedBlack { threads: 2 },
/// )?;
/// let mut v = vec![0.0; w * h];
/// v[0] = 1.8;
/// let injection = vec![0.0; w * h];
/// let report = engine.solve(&injection, &mut v, 1e-9, 100_000)?;
/// assert!(report.converged);
/// assert!(v.iter().all(|&vi| (vi - 1.8).abs() < 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TierEngine {
    topo: Arc<Topo>,
    schedule: SweepSchedule,
    dispatch: ParDispatch,
    /// Active-lane compaction for batched sweeps (default on; see the
    /// module docs for the crossover).
    compaction: bool,
    /// Optional pool override (`None` = the process-global pool).
    pool: Option<Arc<WorkerPool>>,
    /// Per-thread scratch for the [`ParDispatch::ScopedSpawn`] baseline,
    /// kept per engine so the baseline reproduces the pre-pool cost
    /// model exactly (per-solve thread spawns, but engine-owned reusable
    /// scratch) and the measured pool-vs-scoped delta is pure dispatch.
    scoped_scratch: Vec<WorkerScratch>,
    /// Single-threaded forward-substitution scratch.
    scratch: Vec<f64>,
    /// Scalar parallel job (present when the schedule is multi-threaded).
    par: Option<Arc<ParShared>>,
    /// Lazily sized single-threaded batch state.
    batch: BatchState,
    /// Lazily sized parallel batch job (rebuilt when the lane count
    /// changes).
    batch_par: Option<Arc<BatchShared>>,
    /// Lazily sized (grow-only) mixed-precision lane buffers.
    mixed: MixedState,
    /// Row-band sharded dispatch (present when built with
    /// [`TierEngine::new_sharded`] and `shards >= 2`); replaces `par` /
    /// `batch_par` on the f64 solve paths.
    shard: Option<ShardState>,
}

impl TierEngine {
    /// Factors a tier's row segments. `fixed` pins nodes (row-major mask),
    /// `extra_diag` adds optional per-node diagonal conductance (TSV or
    /// pad coupling to external potentials).
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent dimensions or
    /// non-positive conductances; [`SolverError::Sparse`] if a segment is
    /// singular (a free node with no neighbours and no extra diagonal).
    pub fn new(
        width: usize,
        height: usize,
        g_h: f64,
        g_v: f64,
        fixed: Arc<[bool]>,
        extra_diag: Option<&[f64]>,
        schedule: SweepSchedule,
    ) -> Result<Self, SolverError> {
        Self::new_inner(width, height, g_h, g_v, fixed, extra_diag, schedule, 1)
    }

    /// [`TierEngine::new`] with the tier additionally split into `shards`
    /// row bands (see [`ShardPlan`]): every f64 solve path sweeps each
    /// band inside a private halo-extended voltage buffer, exchanging the
    /// 1-row halos between the red and black half-sweeps and reducing
    /// per-sweep convergence deltas across the shards in shard order.
    ///
    /// `shards <= 1` builds the plain engine. `shards >= 2` forces the
    /// [`SweepSchedule::RedBlack`] schedule (on the passed schedule's
    /// thread count) — a red row reads only frozen odd rows and vice
    /// versa, which is exactly what makes the halo image exact — and the
    /// band count is clamped to the tier height.
    ///
    /// # Determinism contract
    ///
    /// Sharding restructures dispatch and memory layout, not arithmetic:
    /// solves, sweeps, and batched solves (masked or compacted) are
    /// **bitwise identical** to the unsharded red-black engine at every
    /// shard count and thread count. The cross-shard reduction folds
    /// per-shard/per-lane deltas with `f64::max` (exact), so
    /// [`LaneReport`] freezing cannot depend on the partition either.
    ///
    /// # Errors
    ///
    /// See [`TierEngine::new`].
    #[allow(clippy::too_many_arguments)] // mirrors `new` plus the band count
    pub fn new_sharded(
        width: usize,
        height: usize,
        g_h: f64,
        g_v: f64,
        fixed: Arc<[bool]>,
        extra_diag: Option<&[f64]>,
        schedule: SweepSchedule,
        shards: usize,
    ) -> Result<Self, SolverError> {
        Self::new_inner(width, height, g_h, g_v, fixed, extra_diag, schedule, shards)
    }

    #[allow(clippy::too_many_arguments)]
    fn new_inner(
        width: usize,
        height: usize,
        g_h: f64,
        g_v: f64,
        fixed: Arc<[bool]>,
        extra_diag: Option<&[f64]>,
        schedule: SweepSchedule,
        shards: usize,
    ) -> Result<Self, SolverError> {
        // Sharding requires the red-black ordering: the per-color halo
        // exchange is what keeps a sharded sweep bitwise equal to the
        // unsharded sweep, so shards >= 2 forces the schedule (keeping
        // the caller's thread count).
        let schedule = if shards > 1 {
            SweepSchedule::RedBlack {
                threads: schedule.threads(),
            }
        } else {
            schedule
        };
        let n = width * height;
        if fixed.len() != n {
            return Err(SolverError::Unsupported {
                what: format!("pin mask must have {n} entries (got {})", fixed.len()),
            });
        }
        if let Some(e) = extra_diag {
            if e.len() != n {
                return Err(SolverError::Unsupported {
                    what: format!("extra_diag must have {n} entries (got {})", e.len()),
                });
            }
        }
        if !(g_h > 0.0 && g_v > 0.0) {
            return Err(SolverError::Unsupported {
                what: "conductances must be positive".into(),
            });
        }
        let threads = schedule.threads();

        let mut segments = Vec::new();
        let mut factors = FactoredSegments::new();
        let mut node_diag = vec![0.0f64; n];
        // Segment-local coefficient buffers (setup only).
        let mut lower = Vec::new();
        let mut diag = Vec::new();
        let mut upper = Vec::new();
        for y in 0..height {
            let row0 = y * width;
            let mut x = 0usize;
            while x < width {
                if fixed[row0 + x] {
                    x += 1;
                    continue;
                }
                let start = x;
                while x < width && !fixed[row0 + x] {
                    x += 1;
                }
                let len = x - start;
                lower.clear();
                diag.clear();
                upper.clear();
                for i in 0..len {
                    let gx = start + i;
                    let mut d = extra_diag.map_or(0.0, |e| e[row0 + gx]);
                    if gx > 0 {
                        d += g_h;
                    }
                    if gx + 1 < width {
                        d += g_h;
                    }
                    if y > 0 {
                        d += g_v;
                    }
                    if y + 1 < height {
                        d += g_v;
                    }
                    diag.push(d);
                    node_diag[row0 + gx] = d;
                    if i + 1 < len {
                        lower.push(-g_h);
                        upper.push(-g_h);
                    }
                }
                let offset = factors.push_segment(&lower, &diag, &upper)?;
                segments.push(Segment {
                    row: y as u32,
                    start: start as u32,
                    len: len as u32,
                    offset: offset as u32,
                });
            }
        }

        let red_idx: Vec<u32> = (0..segments.len() as u32)
            .filter(|&i| segments[i as usize].row % 2 == 0)
            .collect();
        let black_idx: Vec<u32> = (0..segments.len() as u32)
            .filter(|&i| segments[i as usize].row % 2 == 1)
            .collect();
        let red_chunks = balance_chunks(&segments, &red_idx, threads);
        let black_chunks = balance_chunks(&segments, &black_idx, threads);

        let scratch = vec![0.0; factors.max_segment_len()];
        let factors32 = FactoredSegmentsF32::mirror(&factors);
        let topo = Arc::new(Topo {
            width,
            height,
            g_h,
            g_v,
            threads,
            fixed,
            segments,
            red_idx,
            black_idx,
            red_chunks,
            black_chunks,
            factors,
            factors32,
            diag: node_diag,
        });
        let shard = (shards > 1 && height > 1).then(|| {
            let layout = Arc::new(ShardLayout::build(&topo, shards));
            ShardState {
                scalar: Arc::new(ShardShared::new(Arc::clone(&topo), Arc::clone(&layout), 1)),
                batch: None,
                layout,
            }
        });
        let par =
            (shard.is_none() && threads > 1).then(|| Arc::new(ParShared::new(Arc::clone(&topo))));

        Ok(TierEngine {
            topo,
            schedule,
            dispatch: ParDispatch::Pool,
            compaction: true,
            pool: None,
            scoped_scratch: Vec::new(),
            scratch,
            par,
            batch: BatchState::default(),
            batch_par: None,
            mixed: MixedState::default(),
            shard,
        })
    }

    /// Builds an engine from a [`TierProblem`] (cloning its pin mask and
    /// extra diagonal).
    ///
    /// # Errors
    ///
    /// See [`TierEngine::new`].
    pub fn from_problem(
        problem: &TierProblem<'_>,
        schedule: SweepSchedule,
    ) -> Result<Self, SolverError> {
        TierEngine::new(
            problem.width,
            problem.height,
            problem.g_h,
            problem.g_v,
            Arc::from(problem.fixed),
            Some(problem.extra_diag),
            schedule,
        )
    }

    /// The schedule this engine sweeps with.
    pub fn schedule(&self) -> SweepSchedule {
        self.schedule
    }

    /// Number of row-band shards the f64 solve paths sweep over (1 for
    /// an unsharded engine).
    pub fn shards(&self) -> usize {
        self.shard.as_ref().map_or(1, |s| s.layout.num_shards())
    }

    /// How parallel solves are handed to worker threads (default:
    /// [`ParDispatch::Pool`]).
    pub fn dispatch(&self) -> ParDispatch {
        self.dispatch
    }

    /// Selects the parallel dispatch backend. Results are bitwise
    /// identical on both; only latency and allocation behaviour differ.
    pub fn set_dispatch(&mut self, dispatch: ParDispatch) {
        self.dispatch = dispatch;
    }

    /// Whether batched sweeps compact to the active lanes (default
    /// `true`; see the module docs for the crossover).
    pub fn lane_compaction(&self) -> bool {
        self.compaction
    }

    /// Enables or disables active-lane compaction for batched sweeps.
    /// `false` restores the always-full-width kernel; results are bitwise
    /// identical either way. When enabled, the kernel crossover
    /// (re-measured against the vectorized kernels — see the module
    /// docs) picks the full kernel above `8m > 3k` active occupancy and
    /// the scalar per-lane fallback at `m ≤ 3` stragglers.
    pub fn set_lane_compaction(&mut self, enabled: bool) {
        self.compaction = enabled;
    }

    /// Overrides the worker pool parallel solves run on (default: the
    /// process-global [`WorkerPool::global`]). Mainly for tests and
    /// benchmarks that need an isolated pool.
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// A new engine sharing this engine's frozen half — the factored
    /// segments, their f32 mirror, the pin mask, and the balanced sweep
    /// chunks (one `Arc` bump, no refactorization) — with **fresh**
    /// per-solve mutable state (substitution scratch, parallel job
    /// images, batch arenas, mixed-precision buffers).
    ///
    /// This is the engine-level shared/scratch split: everything built by
    /// [`TierEngine::new`] that is read-only after construction lives
    /// behind the shared `Arc`, and everything a solve writes is owned by
    /// the fork. Two forks may therefore solve concurrently from
    /// different threads against one factorization, and a fork's solves
    /// are bitwise identical to the original engine's (same factors, same
    /// sweep order, freshly re-initialized state every call).
    ///
    /// Configuration knobs (schedule, dispatch, compaction, pool
    /// override) are copied at fork time; later `set_*` calls on either
    /// engine do not affect the other.
    #[must_use]
    pub fn fork(&self) -> TierEngine {
        let topo = Arc::clone(&self.topo);
        let shard = self.shard.as_ref().map(|s| ShardState {
            layout: Arc::clone(&s.layout),
            scalar: Arc::new(ShardShared::new(
                Arc::clone(&topo),
                Arc::clone(&s.layout),
                1,
            )),
            batch: None,
        });
        TierEngine {
            schedule: self.schedule,
            dispatch: self.dispatch,
            compaction: self.compaction,
            pool: self.pool.clone(),
            scoped_scratch: Vec::new(),
            scratch: vec![0.0; self.scratch.len()],
            par: (shard.is_none() && topo.threads > 1)
                .then(|| Arc::new(ParShared::new(Arc::clone(&topo)))),
            batch: BatchState::default(),
            batch_par: None,
            mixed: MixedState::default(),
            shard,
            topo,
        }
    }

    /// Sweeps until the largest per-sweep voltage update falls below
    /// `tolerance`, reading the initial guess (and pinned values) from `v`
    /// and leaving the solution there. Plain block Gauss–Seidel (ω = 1).
    ///
    /// # Errors
    ///
    /// [`SolverError::DidNotConverge`] if `max_sweeps` runs out.
    pub fn solve(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<SolveReport, SolverError> {
        self.solve_with_omega(injection, v, tolerance, max_sweeps, 1.0)
    }

    /// Like [`TierEngine::solve`] with an explicit SOR factor `ω ∈ (0, 2)`.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for an out-of-range `ω`;
    /// [`SolverError::DidNotConverge`] if `max_sweeps` runs out.
    pub fn solve_with_omega(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        self.check_call(injection, v, omega)?;
        if self.shard.is_some() {
            return self.solve_sharded(injection, v, tolerance, max_sweeps, omega);
        }
        if self.topo.threads > 1 {
            return self.solve_parallel(injection, v, tolerance, max_sweeps, omega);
        }
        let mut max_delta = f64::INFINITY;
        let mut sweeps = 0;
        while sweeps < max_sweeps {
            max_delta = match self.schedule {
                SweepSchedule::Sequential => {
                    self.sweep_sequential_slice(injection, v, sweeps % 2 == 0, omega)
                }
                SweepSchedule::RedBlack { .. } => self.sweep_redblack_slice(injection, v, omega),
            };
            sweeps += 1;
            if max_delta < tolerance {
                return Ok(SolveReport {
                    iterations: sweeps,
                    residual: max_delta,
                    converged: true,
                    workspace_bytes: self.memory_bytes(),
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations: sweeps,
            residual: max_delta,
            tolerance,
        })
    }

    /// One sweep under the engine's schedule (both colors for red-black),
    /// returning the largest voltage update. `downward` picks the row
    /// direction for the sequential schedule and is ignored by red-black.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent array lengths or an
    /// out-of-range `ω`.
    pub fn sweep_once(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        downward: bool,
        omega: f64,
    ) -> Result<f64, SolverError> {
        self.check_call(injection, v, omega)?;
        if let Some(shard) = &self.shard {
            let shared = Arc::clone(&shard.scalar);
            let mut lanes = [LaneReport {
                iterations: 0,
                residual: f64::INFINITY,
                converged: false,
            }];
            self.run_sharded(
                &shared,
                injection,
                v,
                f64::NEG_INFINITY,
                1,
                omega,
                &mut lanes,
            );
            return Ok(lanes[0].residual);
        }
        Ok(match self.schedule {
            SweepSchedule::Sequential => self.sweep_sequential_slice(injection, v, downward, omega),
            SweepSchedule::RedBlack { threads } if threads > 1 => {
                self.parallel_sweeps(injection, v, f64::NEG_INFINITY, 1, omega)
                    .1
            }
            SweepSchedule::RedBlack { .. } => self.sweep_redblack_slice(injection, v, omega),
        })
    }

    /// Solves `lanes.len()` right-hand sides together through the shared
    /// prefactored segments (plain block Gauss–Seidel, ω = 1). See
    /// [`TierEngine::solve_batch_masked`] for the memory layout and
    /// semantics.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent array lengths or an
    /// empty batch. Non-convergence is **not** an error on the batched
    /// path: each lane's [`LaneReport`] carries its own outcome.
    pub fn solve_batch(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        self.solve_batch_masked(injection, v, tolerance, max_sweeps, 1.0, None, lanes)
    }

    /// Like [`TierEngine::solve_batch`] with an explicit SOR factor
    /// `ω ∈ (0, 2)`.
    ///
    /// # Errors
    ///
    /// See [`TierEngine::solve_batch_masked`].
    pub fn solve_batch_with_omega(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        self.solve_batch_masked(injection, v, tolerance, max_sweeps, omega, None, lanes)
    }

    /// The general batched solve: `k = lanes.len()` right-hand sides sweep
    /// together against the shared factors, each lane converging (and
    /// freezing) independently.
    ///
    /// # Memory layout
    ///
    /// `injection` and `v` hold all lanes **node-major, lane-minor**: the
    /// value of lane `j` at flat node `i` lives at index `i * k + j`. All
    /// lanes of one node are contiguous, so the inner substitution loops
    /// run unit-stride over the lanes while every factor coefficient,
    /// neighbour offset, and pin-mask bit is loaded once per row instead
    /// of once per lane — this is where the batched throughput comes from.
    ///
    /// # Per-lane convergence and compaction
    ///
    /// After every sweep each lane's own largest update is compared with
    /// `tolerance`; a lane that passes is *frozen* (its voltages stop
    /// changing, its sweep count and residual are recorded) while the
    /// rest keep sweeping. A frozen lane's iterate is therefore **bitwise
    /// identical** to what a standalone [`TierEngine::solve`] on that
    /// right-hand side would produce, on every schedule and thread count.
    /// `mask` (when present) marks lanes to leave untouched from the
    /// start: their voltages are never read or written and their reports
    /// come back as converged in 0 sweeps.
    ///
    /// Frozen lanes cost (almost) nothing: each sweep compacts to the
    /// active lanes — or falls back to the scalar per-lane kernel at very
    /// low active counts — so a single straggler in a wide batch pays a
    /// single solve's arithmetic, not the whole batch's (see the
    /// [module docs](self) for the crossover and
    /// [`TierEngine::set_lane_compaction`] to disable it).
    ///
    /// Lanes that exhaust `max_sweeps` report `converged = false` with
    /// their true residual; the call still returns `Ok` (the aggregate
    /// report's `converged` is the AND over the active lanes).
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for an empty batch, inconsistent
    /// array lengths, a bad mask length, or an out-of-range `ω`.
    #[allow(clippy::too_many_arguments)] // the full batched-solve surface
    pub fn solve_batch_masked(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        mask: Option<&[bool]>,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        let k = lanes.len();
        self.check_batch_call(injection, v, omega, mask, k)?;
        self.ensure_batch(k);
        for (j, lane) in lanes.iter_mut().enumerate() {
            let on = mask.is_none_or(|m| m[j]);
            *lane = LaneReport {
                iterations: 0,
                residual: if on { f64::INFINITY } else { 0.0 },
                converged: !on,
            };
        }
        if self.shard.is_some() {
            let shared = Arc::clone(
                self.shard
                    .as_ref()
                    .and_then(|s| s.batch.as_ref())
                    .expect("sharded batch job sized by ensure_batch"),
            );
            let sweeps =
                self.run_sharded(&shared, injection, v, tolerance, max_sweeps, omega, lanes);
            return Ok(aggregate_report(lanes, sweeps, self.memory_bytes()));
        }
        if self.topo.threads > 1 {
            return Ok(self.solve_batch_parallel(injection, v, tolerance, max_sweeps, omega, lanes));
        }

        // Single-threaded schedules: sweep in place on `v`.
        let topo = Arc::clone(&self.topo);
        let schedule = self.schedule;
        let compaction = self.compaction;
        let sweeps = {
            let BatchState {
                scratch,
                active,
                delta,
                ids,
                ..
            } = &mut self.batch;
            let mut n_active = 0usize;
            for (j, lane) in lanes.iter().enumerate() {
                active[j] = !lane.converged;
                if active[j] {
                    ids[n_active] = j as u32;
                    n_active += 1;
                }
            }
            let mut view = SliceView(v);
            let mut sweeps = 0usize;
            while sweeps < max_sweeps && n_active > 0 {
                delta.fill(0.0);
                let kernel = choose_batch_kernel(n_active, k, compaction);
                match schedule {
                    SweepSchedule::Sequential => {
                        let nseg = topo.segments.len();
                        let downward = sweeps % 2 == 0;
                        for s in 0..nseg {
                            let si = if downward { s } else { nseg - 1 - s };
                            batch_segment_dispatch(
                                kernel,
                                &topo,
                                topo.segments[si],
                                injection,
                                omega,
                                k,
                                active,
                                &ids[..n_active],
                                scratch,
                                &mut view,
                                delta,
                            );
                        }
                    }
                    SweepSchedule::RedBlack { .. } => {
                        for idx in [&topo.red_idx, &topo.black_idx] {
                            for &si in idx.iter() {
                                batch_segment_dispatch(
                                    kernel,
                                    &topo,
                                    topo.segments[si as usize],
                                    injection,
                                    omega,
                                    k,
                                    active,
                                    &ids[..n_active],
                                    scratch,
                                    &mut view,
                                    delta,
                                );
                            }
                        }
                    }
                }
                sweeps += 1;
                let mut live = 0usize;
                for j in 0..k {
                    if !active[j] {
                        continue;
                    }
                    lanes[j].iterations = sweeps;
                    lanes[j].residual = delta[j];
                    if delta[j] < tolerance {
                        lanes[j].converged = true;
                        active[j] = false;
                    } else {
                        live += 1;
                    }
                }
                if live != n_active {
                    n_active = 0;
                    for j in 0..k {
                        if active[j] {
                            ids[n_active] = j as u32;
                            n_active += 1;
                        }
                    }
                }
            }
            sweeps
        };
        Ok(aggregate_report(lanes, sweeps, self.memory_bytes()))
    }

    /// Mixed-precision [`TierEngine::solve`] (ω = 1): iteratively refined
    /// f32 sweeps with f64 residual accumulation. See
    /// [`TierEngine::solve_mixed_with_omega`].
    ///
    /// # Errors
    ///
    /// [`SolverError::DidNotConverge`] if the f32 sweep budget
    /// `max_sweeps` runs out before the refinement converges.
    pub fn solve_mixed(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<SolveReport, SolverError> {
        self.solve_mixed_with_omega(injection, v, tolerance, max_sweeps, 1.0)
    }

    /// Mixed-precision solve: repeats *(true f64 residual → f32
    /// correction sweeps → f64 update)* until the whole refinement round
    /// moves the iterate by less than `tolerance`. Every round evaluates
    /// `r = b − A·v` in full f64, then runs relaxed Gauss–Seidel sweeps
    /// on the correction system `A·d = r` entirely in f32 (through the
    /// prefactored f32 mirror built at construction) until the f32
    /// iterate stagnates, and applies `v += d` in f64. The f32 buffers
    /// live in the engine and only grow, so warm solves make no
    /// allocator calls.
    ///
    /// The convergence criterion — a full round's largest applied
    /// correction below `tolerance` — is at least as strict as the f64
    /// path's per-sweep criterion, so a converged mixed solve meets the
    /// same tolerance contract as [`TierEngine::solve_with_omega`].
    /// `max_sweeps` budgets the *total f32 sweeps* across all rounds;
    /// exhausting it reports the honest partial state instead of a
    /// silently loose answer. The refinement always runs on the calling
    /// thread, so its iterates are identical at every `parallelism`.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent array lengths or an
    /// out-of-range `ω`; [`SolverError::DidNotConverge`] if `max_sweeps`
    /// runs out.
    pub fn solve_mixed_with_omega(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        self.check_call(injection, v, omega)?;
        let mut lanes = [LaneReport {
            iterations: 0,
            residual: f64::INFINITY,
            converged: false,
        }];
        let sweeps = self.mixed_core(injection, v, tolerance, max_sweeps, omega, &mut lanes);
        let report = aggregate_report(&lanes, sweeps, self.memory_bytes());
        if report.converged {
            Ok(report)
        } else {
            Err(SolverError::DidNotConverge {
                iterations: report.iterations,
                residual: report.residual,
                tolerance,
            })
        }
    }

    /// Batched mixed-precision solve: the drop-in counterpart of
    /// [`TierEngine::solve_batch_masked`] running the refinement of
    /// [`TierEngine::solve_mixed_with_omega`] over all `lanes.len()`
    /// right-hand sides at once (same node-major/lane-minor layout, same
    /// mask semantics, same per-lane freezing — a lane whose refinement
    /// round moves it by less than `tolerance` stops receiving
    /// corrections). Lanes that exhaust the shared f32 sweep budget
    /// report `converged = false`; the call still returns `Ok`.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for an empty batch, inconsistent
    /// array lengths, a bad mask length, or an out-of-range `ω`.
    #[allow(clippy::too_many_arguments)] // mirrors solve_batch_masked
    pub fn solve_batch_masked_mixed(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        mask: Option<&[bool]>,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        let k = lanes.len();
        self.check_batch_call(injection, v, omega, mask, k)?;
        for (j, lane) in lanes.iter_mut().enumerate() {
            let on = mask.is_none_or(|m| m[j]);
            *lane = LaneReport {
                iterations: 0,
                residual: if on { f64::INFINITY } else { 0.0 },
                converged: !on,
            };
        }
        let sweeps = self.mixed_core(injection, v, tolerance, max_sweeps, omega, lanes);
        Ok(aggregate_report(lanes, sweeps, self.memory_bytes()))
    }

    /// The shared mixed-precision refinement loop. `lanes` arrives
    /// pre-initialised (masked-off lanes already `converged`); returns
    /// the total number of f32 sweeps spent. Runs entirely on the
    /// calling thread.
    fn mixed_core(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        lanes: &mut [LaneReport],
    ) -> usize {
        let k = lanes.len();
        let topo = Arc::clone(&self.topo);
        let schedule = self.schedule;
        let seg_len = topo.factors.max_segment_len();
        self.mixed.ensure(topo.n(), seg_len, k);
        let MixedState {
            d32,
            r32,
            scratch32,
            dmax32,
            peak32,
            active,
            round_active,
            rrow,
        } = &mut self.mixed;
        let omega32 = omega as f32;
        let mut live = 0usize;
        for (j, lane) in lanes.iter().enumerate() {
            active[j] = !lane.converged;
            if active[j] {
                live += 1;
            }
        }
        let mut sweeps_total = 0usize;
        while live > 0 && sweeps_total < max_sweeps {
            // f64 ground truth: the exact residual of the current iterate.
            compute_residual_f32(&topo, injection, v, k, rrow, r32);
            // f32 correction solve: relaxed sweeps on A·d = r from d = 0
            // until each lane's sweep update stagnates relative to its
            // peak (further f32 sweeps would only circulate roundoff).
            d32[..topo.n() * k].fill(0.0);
            peak32[..k].fill(0.0);
            round_active[..k].copy_from_slice(&active[..k]);
            let mut round_live = live;
            while round_live > 0 && sweeps_total < max_sweeps {
                dmax32[..k].fill(0.0);
                mixed_sweep(
                    &topo,
                    schedule,
                    sweeps_total % 2 == 0,
                    r32,
                    d32,
                    omega32,
                    k,
                    round_active,
                    scratch32,
                    dmax32,
                );
                sweeps_total += 1;
                for j in 0..k {
                    if !round_active[j] {
                        continue;
                    }
                    if dmax32[j] > peak32[j] {
                        peak32[j] = dmax32[j];
                    }
                    let floor = (MIXED_STAGNATION_REL * peak32[j]).max(f32::MIN_POSITIVE);
                    if dmax32[j] <= floor {
                        round_active[j] = false;
                        round_live -= 1;
                    }
                }
            }
            // Apply the round's correction in f64 and measure how far it
            // moved each active lane (the refinement's convergence test).
            // The correction is exactly 0.0 at pinned nodes and frozen
            // lanes (their entries are zeroed at round start and never
            // written by the gated sweeps), so the pass is dense and
            // branch-free: zero entries change nothing and contribute
            // nothing to the per-lane maxima.
            dmax32[..k].fill(0.0);
            for (vrow, drow) in v
                .chunks_exact_mut(k)
                .zip(d32[..topo.n() * k].chunks_exact(k))
            {
                for ((vj, &c), m) in vrow.iter_mut().zip(drow).zip(dmax32[..k].iter_mut()) {
                    *m = m.max(c.abs());
                    *vj += f64::from(c);
                }
            }
            for (j, lane) in lanes.iter_mut().enumerate() {
                if !active[j] {
                    continue;
                }
                lane.iterations = sweeps_total;
                lane.residual = f64::from(dmax32[j]);
                if lane.residual < tolerance {
                    lane.converged = true;
                    active[j] = false;
                    live -= 1;
                }
            }
        }
        sweeps_total
    }

    /// Sizes the batch state for `k` lanes (no-op when already sized):
    /// the in-place sweep buffers on single-threaded schedules, the
    /// shared pool job on multi-threaded ones (whose workers bring their
    /// own pinned scratch).
    fn ensure_batch(&mut self, k: usize) {
        if self.batch.lanes == k {
            return;
        }
        self.batch.lanes = k;
        if let Some(shard) = &mut self.shard {
            shard.batch = Some(Arc::new(ShardShared::new(
                Arc::clone(&self.topo),
                Arc::clone(&shard.layout),
                k,
            )));
        } else if self.topo.threads > 1 {
            self.batch_par = Some(Arc::new(BatchShared::new(Arc::clone(&self.topo), k)));
        } else {
            let seg_len = self.topo.factors.max_segment_len();
            let b = &mut self.batch;
            b.scratch = vec![0.0; seg_len * k];
            b.active = vec![true; k];
            b.delta = vec![0.0; k];
            b.ids = vec![0; k];
        }
    }

    /// Multi-threaded batched red-black solve on the worker pool: lane
    /// state is published into the prebuilt [`BatchShared`] job, the pool
    /// (or the scoped baseline) runs it, and the per-lane outcomes are
    /// copied back. Thread 0 reduces and freezes lanes centrally, so
    /// freezing — and therefore every iterate — is deterministic in the
    /// thread count.
    fn solve_batch_parallel(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        lanes: &mut [LaneReport],
    ) -> SolveReport {
        let shared = Arc::clone(self.batch_par.as_ref().expect("batch parallel state"));
        {
            let mut input = shared.input.write().expect("batch input lock");
            input.injection.copy_from_slice(injection);
            input.omega = omega;
            input.tolerance = tolerance;
            input.max_sweeps = max_sweeps;
        }
        for (slot, &x) in shared.atomic_v.iter().zip(v.iter()) {
            slot.store(x.to_bits(), Ordering::Relaxed);
        }
        let mut m = 0usize;
        for (j, lane) in lanes.iter().enumerate() {
            shared.lane_iters[j].store(lane.iterations, Ordering::Relaxed);
            shared.lane_residual[j].store(lane.residual.to_bits(), Ordering::Relaxed);
            shared.lane_converged[j].store(lane.converged, Ordering::Relaxed);
            shared.active[j].store(!lane.converged, Ordering::Relaxed);
            if !lane.converged {
                shared.active_ids[m].store(j as u32, Ordering::Relaxed);
                m += 1;
            }
        }
        shared.n_active.store(m, Ordering::Relaxed);
        shared.sweeps_done.store(0, Ordering::Relaxed);
        shared.status.store(RUN, Ordering::Relaxed);
        shared.compaction.store(self.compaction, Ordering::Relaxed);
        if m > 0 && max_sweeps > 0 {
            self.dispatch_job(shared.clone());
        }
        for (slot, x) in shared.atomic_v.iter().zip(v.iter_mut()) {
            *x = f64::from_bits(slot.load(Ordering::Relaxed));
        }
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane = LaneReport {
                iterations: shared.lane_iters[j].load(Ordering::Relaxed),
                residual: f64::from_bits(shared.lane_residual[j].load(Ordering::Relaxed)),
                converged: shared.lane_converged[j].load(Ordering::Relaxed),
            };
        }
        let sweeps = shared.sweeps_done.load(Ordering::Relaxed);
        aggregate_report(lanes, sweeps, self.memory_bytes())
    }

    /// Scalar sharded solve: runs as a one-lane batch on the prebuilt
    /// `k = 1` shard job (bitwise-free by the batch-of-1 ≡ solo
    /// contract), keeping [`TierEngine::solve`]'s error semantics.
    fn solve_sharded(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        if max_sweeps == 0 {
            return Err(SolverError::DidNotConverge {
                iterations: 0,
                residual: f64::INFINITY,
                tolerance,
            });
        }
        let shared = Arc::clone(&self.shard.as_ref().expect("sharded state").scalar);
        let mut lanes = [LaneReport {
            iterations: 0,
            residual: f64::INFINITY,
            converged: false,
        }];
        let sweeps = self.run_sharded(
            &shared, injection, v, tolerance, max_sweeps, omega, &mut lanes,
        );
        if lanes[0].converged {
            Ok(SolveReport {
                iterations: sweeps,
                residual: lanes[0].residual,
                converged: true,
                workspace_bytes: self.memory_bytes(),
            })
        } else {
            Err(SolverError::DidNotConverge {
                iterations: sweeps,
                residual: lanes[0].residual,
                tolerance,
            })
        }
    }

    /// Publishes lane state and voltages into a [`ShardShared`] job,
    /// scatters `v` into the per-shard halo images (halo rows included,
    /// so the first red half-sweep reads correct neighbour values), runs
    /// the job, and gathers the **owned** rows back. Returns the sweep
    /// count. Warm calls are allocation-free on the pool dispatch.
    #[allow(clippy::too_many_arguments)] // mirrors solve_batch_parallel + job
    fn run_sharded(
        &mut self,
        shared: &Arc<ShardShared>,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        lanes: &mut [LaneReport],
    ) -> usize {
        let k = shared.k;
        let wk = self.topo.width * k;
        {
            let mut input = shared.input.write().expect("shard input lock");
            input.injection.copy_from_slice(injection);
            input.omega = omega;
            input.tolerance = tolerance;
            input.max_sweeps = max_sweeps;
        }
        for (band, buf) in shared.layout.bands.iter().zip(&shared.bufs) {
            let g0 = band.lo * wk;
            for (slot, &x) in buf.iter().zip(&v[g0..]) {
                slot.store(x.to_bits(), Ordering::Relaxed);
            }
        }
        let mut m = 0usize;
        for (j, lane) in lanes.iter().enumerate() {
            shared.lane_iters[j].store(lane.iterations, Ordering::Relaxed);
            shared.lane_residual[j].store(lane.residual.to_bits(), Ordering::Relaxed);
            shared.lane_converged[j].store(lane.converged, Ordering::Relaxed);
            shared.active[j].store(!lane.converged, Ordering::Relaxed);
            if !lane.converged {
                shared.active_ids[m].store(j as u32, Ordering::Relaxed);
                m += 1;
            }
        }
        shared.n_active.store(m, Ordering::Relaxed);
        shared.sweeps_done.store(0, Ordering::Relaxed);
        shared.status.store(RUN, Ordering::Relaxed);
        shared.compaction.store(self.compaction, Ordering::Relaxed);
        if m > 0 && max_sweeps > 0 {
            self.dispatch_job(Arc::clone(shared) as Arc<dyn PoolJob>);
        }
        for (band, buf) in shared.layout.bands.iter().zip(&shared.bufs) {
            let own = (band.y0 - band.lo) * wk;
            let len = (band.y1 - band.y0) * wk;
            let g0 = band.y0 * wk;
            for (slot, x) in buf[own..own + len].iter().zip(&mut v[g0..g0 + len]) {
                *x = f64::from_bits(slot.load(Ordering::Relaxed));
            }
        }
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane = LaneReport {
                iterations: shared.lane_iters[j].load(Ordering::Relaxed),
                residual: f64::from_bits(shared.lane_residual[j].load(Ordering::Relaxed)),
                converged: shared.lane_converged[j].load(Ordering::Relaxed),
            };
        }
        shared.sweeps_done.load(Ordering::Relaxed)
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.topo.memory_bytes()
            + self.scratch.capacity() * size_of::<f64>()
            + self
                .scoped_scratch
                .iter()
                .map(WorkerScratch::memory_bytes)
                .sum::<usize>()
            + self.batch.memory_bytes()
            + self.mixed.memory_bytes()
            + self.par.as_ref().map_or(0, |p| p.memory_bytes())
            + self.batch_par.as_ref().map_or(0, |b| b.memory_bytes())
            + self.shard.as_ref().map_or(0, |s| {
                s.layout.memory_bytes()
                    + s.scalar.memory_bytes()
                    + s.batch.as_ref().map_or(0, |b| b.memory_bytes())
            })
    }

    fn check_call(&self, injection: &[f64], v: &[f64], omega: f64) -> Result<(), SolverError> {
        let n = self.topo.n();
        if injection.len() != n || v.len() != n {
            return Err(SolverError::Unsupported {
                what: format!(
                    "tier arrays must have {n} entries (injection {}, v {})",
                    injection.len(),
                    v.len()
                ),
            });
        }
        if !(omega > 0.0 && omega < 2.0) {
            return Err(SolverError::Unsupported {
                what: format!("SOR omega {omega} outside (0, 2)"),
            });
        }
        Ok(())
    }

    /// Shared argument validation for the batched entry points
    /// ([`TierEngine::solve_batch_masked`] and
    /// [`TierEngine::solve_batch_masked_mixed`]).
    fn check_batch_call(
        &self,
        injection: &[f64],
        v: &[f64],
        omega: f64,
        mask: Option<&[bool]>,
        k: usize,
    ) -> Result<(), SolverError> {
        let n = self.topo.n();
        if k == 0 {
            return Err(SolverError::Unsupported {
                what: "batched solve needs at least one lane".into(),
            });
        }
        if injection.len() != n * k || v.len() != n * k {
            return Err(SolverError::Unsupported {
                what: format!(
                    "batch arrays must have {n} × {k} entries (injection {}, v {})",
                    injection.len(),
                    v.len()
                ),
            });
        }
        if let Some(m) = mask {
            if m.len() != k {
                return Err(SolverError::Unsupported {
                    what: format!("lane mask must have {k} entries (got {})", m.len()),
                });
            }
        }
        if !(omega > 0.0 && omega < 2.0) {
            return Err(SolverError::Unsupported {
                what: format!("SOR omega {omega} outside (0, 2)"),
            });
        }
        Ok(())
    }

    /// Row-ordered Gauss–Seidel over all segments (ascending rows when
    /// `downward`).
    fn sweep_sequential_slice(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        downward: bool,
        omega: f64,
    ) -> f64 {
        let topo = &self.topo;
        let scratch = &mut self.scratch;
        let nseg = topo.segments.len();
        let mut max_delta = 0.0f64;
        let mut view = SliceView(v);
        for si in 0..nseg {
            let seg = if downward {
                topo.segments[si]
            } else {
                topo.segments[nseg - 1 - si]
            };
            let delta = solve_segment(topo, seg, injection, omega, scratch, &mut view);
            max_delta = max_delta.max(delta);
        }
        max_delta
    }

    /// Red-black sweep on one thread (same iterates as the parallel path).
    fn sweep_redblack_slice(&mut self, injection: &[f64], v: &mut [f64], omega: f64) -> f64 {
        let topo = &self.topo;
        let scratch = &mut self.scratch;
        let mut max_delta = 0.0f64;
        let mut view = SliceView(v);
        for idx in [&topo.red_idx, &topo.black_idx] {
            for &si in idx.iter() {
                let delta = solve_segment(
                    topo,
                    topo.segments[si as usize],
                    injection,
                    omega,
                    scratch,
                    &mut view,
                );
                max_delta = max_delta.max(delta);
            }
        }
        max_delta
    }

    /// Full multi-threaded solve through the persistent worker pool.
    fn solve_parallel(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        if max_sweeps == 0 {
            return Err(SolverError::DidNotConverge {
                iterations: 0,
                residual: f64::INFINITY,
                tolerance,
            });
        }
        let (sweeps, residual) = self.parallel_sweeps(injection, v, tolerance, max_sweeps, omega);
        if residual < tolerance {
            Ok(SolveReport {
                iterations: sweeps,
                residual,
                converged: true,
                workspace_bytes: self.memory_bytes(),
            })
        } else {
            Err(SolverError::DidNotConverge {
                iterations: sweeps,
                residual,
                tolerance,
            })
        }
    }

    /// Runs up to `max_sweeps` red-black sweeps on the prebuilt parallel
    /// job (loading `v` into the atomic image first and storing it back
    /// after), stopping early once the sweep delta drops below
    /// `tolerance`. Returns `(sweeps run, last delta)`. Warm calls are
    /// allocation-free on the pool dispatch.
    fn parallel_sweeps(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> (usize, f64) {
        let shared = Arc::clone(self.par.as_ref().expect("parallel shared state"));
        {
            let mut input = shared.input.write().expect("par input lock");
            input.injection.copy_from_slice(injection);
            input.omega = omega;
            input.tolerance = tolerance;
            input.max_sweeps = max_sweeps;
        }
        for (slot, &x) in shared.atomic_v.iter().zip(v.iter()) {
            slot.store(x.to_bits(), Ordering::Relaxed);
        }
        shared.status.store(RUN, Ordering::Relaxed);
        shared.sweeps_done.store(0, Ordering::Relaxed);
        shared
            .final_delta
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.dispatch_job(shared.clone());
        for (slot, x) in shared.atomic_v.iter().zip(v.iter_mut()) {
            *x = f64::from_bits(slot.load(Ordering::Relaxed));
        }
        (
            shared.sweeps_done.load(Ordering::Relaxed),
            f64::from_bits(shared.final_delta.load(Ordering::Relaxed)),
        )
    }

    /// Hands a prepared job to the configured dispatch backend and blocks
    /// until it drains.
    fn dispatch_job(&mut self, job: Arc<dyn PoolJob>) {
        let threads = self.topo.threads;
        match self.dispatch {
            ParDispatch::Pool => match &self.pool {
                Some(pool) => pool.run(threads, job),
                None => WorkerPool::global().run(threads, job),
            },
            ParDispatch::ScopedSpawn => {
                // The pre-pool behaviour, kept as a benchmark baseline:
                // fresh threads every solve, engine-owned reusable
                // scratch (like the old per-engine scratch vectors), so
                // the pool-vs-scoped delta measures dispatch cost alone.
                if self.scoped_scratch.len() < threads {
                    self.scoped_scratch
                        .resize_with(threads, WorkerScratch::default);
                }
                let scratches = &mut self.scoped_scratch;
                std::thread::scope(|scope| {
                    let mut iter = scratches.iter_mut();
                    let lead = iter.next().expect("thread-0 scratch");
                    for (i, ws) in iter.enumerate() {
                        let job = &*job;
                        scope.spawn(move || job.run(i + 1, ws));
                    }
                    job.run(0, lead);
                });
            }
        }
    }
}

/// Collapses per-lane outcomes into the aggregate [`SolveReport`] of a
/// batched solve.
fn aggregate_report(lanes: &[LaneReport], sweeps: usize, workspace_bytes: usize) -> SolveReport {
    SolveReport {
        iterations: sweeps,
        residual: lanes.iter().fold(0.0f64, |m, l| m.max(l.residual)),
        converged: lanes.iter().all(|l| l.converged),
        workspace_bytes,
    }
}

/// Read/write access to the voltage image, monomorphized so the slice
/// (single-thread) and atomic (multi-thread) paths share one kernel.
trait VoltView {
    fn get(&self, i: usize) -> f64;
    fn set(&mut self, i: usize, value: f64);
}

struct SliceView<'a>(&'a mut [f64]);

impl VoltView for SliceView<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, value: f64) {
        self.0[i] = value;
    }
}

/// Atomic image view. Relaxed ordering suffices: phase barriers establish
/// the happens-before edges between writers of one color and readers of
/// the next phase, and within a phase no two threads touch the same node.
struct AtomicView<'a>(&'a [AtomicU64]);

impl VoltView for AtomicView<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.0[i].load(Ordering::Relaxed))
    }

    #[inline(always)]
    fn set(&mut self, i: usize, value: f64) {
        self.0[i].store(value.to_bits(), Ordering::Relaxed);
    }
}

/// A shard's halo-extended image viewed in **global** node coordinates:
/// the kernels keep indexing `node * k + j` exactly as on the global
/// image, and the view translates into the shard-local buffer (whose
/// slot 0 is global row `lo`). Every index a kernel touches while
/// sweeping a shard's owned segments — own row, in-row pinned
/// neighbours, and the rows above/below — lies inside `lo..hi`, so the
/// offset never underflows. Same relaxed-ordering argument as
/// [`AtomicView`], with the halo exchange supplying the cross-shard
/// edges.
struct ShardAtomicView<'a> {
    buf: &'a [AtomicU64],
    /// `lo * width * k` of the shard this view wraps.
    off: usize,
}

impl VoltView for ShardAtomicView<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.buf[i - self.off].load(Ordering::Relaxed))
    }

    #[inline(always)]
    fn set(&mut self, i: usize, value: f64) {
        self.buf[i - self.off].store(value.to_bits(), Ordering::Relaxed);
    }
}

/// One lane of a node-major/lane-minor batch image, seen as a plain
/// `n`-node view (node `i` maps to slot `i * k + j`). Lets the scalar
/// kernel run unchanged on a single batch lane.
struct LaneView<'a, V> {
    v: &'a mut V,
    k: usize,
    j: usize,
}

impl<V: VoltView> VoltView for LaneView<'_, V> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        self.v.get(i * self.k + self.j)
    }

    #[inline(always)]
    fn set(&mut self, i: usize, value: f64) {
        self.v.set(i * self.k + self.j, value);
    }
}

/// Read access to a right-hand-side vector, monomorphized so the scalar
/// kernel serves both plain slices and single lanes of a batch image.
trait InjSrc {
    fn at(&self, node: usize) -> f64;
}

impl InjSrc for [f64] {
    #[inline(always)]
    fn at(&self, node: usize) -> f64 {
        self[node]
    }
}

/// One lane of a node-major/lane-minor batch right-hand side.
struct LaneInj<'a> {
    inj: &'a [f64],
    k: usize,
    j: usize,
}

impl InjSrc for LaneInj<'_> {
    #[inline(always)]
    fn at(&self, node: usize) -> f64 {
        self.inj[node * self.k + self.j]
    }
}

/// Solves one prefactored row segment exactly (given the current
/// neighbouring rows) and applies the (over-)relaxed update; returns the
/// largest update in the segment.
#[inline]
fn solve_segment<V: VoltView, I: InjSrc + ?Sized>(
    topo: &Topo,
    seg: Segment,
    injection: &I,
    omega: f64,
    scratch: &mut [f64],
    view: &mut V,
) -> f64 {
    let (w, h) = (topo.width, topo.height);
    let (g_h, g_v) = (topo.g_h, topo.g_v);
    let fixed = &topo.fixed;
    let factors = &topo.factors;
    let y = seg.row as usize;
    let start = seg.start as usize;
    let len = seg.len as usize;
    let row0 = y * w;
    let offset = seg.offset as usize;
    let mut max_delta = 0.0f64;
    // Forward pass: build each right-hand side entry from the frozen
    // neighbours and eliminate on the fly (no staging buffer). Each
    // neighbour term is a fused multiply-add — the same per-element
    // operation the blocked batched kernels broadcast over their lanes,
    // which keeps scalar and batched iterates bitwise identical.
    let mut prev = 0.0;
    for i in 0..len {
        let gx = start + i;
        let node = row0 + gx;
        let mut b = injection.at(node);
        if gx > 0 && fixed[node - 1] {
            b = g_h.mul_add(view.get(node - 1), b);
        }
        if gx + 1 < w && fixed[node + 1] {
            b = g_h.mul_add(view.get(node + 1), b);
        }
        if y > 0 {
            b = g_v.mul_add(view.get(node - w), b);
        }
        if y + 1 < h {
            b = g_v.mul_add(view.get(node + w), b);
        }
        let dp = factors.forward_step(offset + i, b, prev);
        scratch[i] = dp;
        prev = dp;
    }
    // Backward pass: substitute and apply the relaxed update in place.
    let mut next = 0.0;
    for i in (0..len).rev() {
        let xi = factors.backward_step(offset + i, scratch[i], next);
        let node = row0 + start + i;
        let old = view.get(node);
        let new = omega.mul_add(xi - old, old);
        let delta = (new - old).abs();
        if delta > max_delta {
            max_delta = delta;
        }
        view.set(node, new);
        next = xi;
    }
    max_delta
}

/// Runs the selected batched kernel on one segment. All three kernels
/// perform the same per-lane arithmetic, so the choice cannot change any
/// lane's iterate (see the module docs).
#[allow(clippy::too_many_arguments)] // the shared batched-kernel surface
#[inline]
fn batch_segment_dispatch<V: VoltView>(
    kernel: BatchKernel,
    topo: &Topo,
    seg: Segment,
    injection: &[f64],
    omega: f64,
    k: usize,
    active: &[bool],
    ids: &[u32],
    scratch: &mut [f64],
    view: &mut V,
    delta: &mut [f64],
) {
    match kernel {
        BatchKernel::Full => {
            solve_segment_batch(topo, seg, injection, omega, k, active, scratch, view, delta);
        }
        BatchKernel::Compact => {
            solve_segment_batch_ids(topo, seg, injection, omega, k, ids, scratch, view, delta);
        }
        BatchKernel::Scalar => {
            for &j in ids {
                let j = j as usize;
                let d = solve_segment(
                    topo,
                    seg,
                    &LaneInj {
                        inj: injection,
                        k,
                        j,
                    },
                    omega,
                    scratch,
                    &mut LaneView { v: view, k, j },
                );
                if d > delta[j] {
                    delta[j] = d;
                }
            }
        }
    }
}

/// Batched [`solve_segment`]: solves one prefactored row segment for all
/// `k` lanes at once. `injection` and the view are node-major/lane-minor
/// (lane `j` of node `i` at `i * k + j`), so every inner loop over the
/// lanes is unit-stride while the factors, pin mask, and neighbour
/// offsets are loaded once per row. Wide batches over long segments are
/// traversed in **cache-sized lane blocks** (see [`lane_block_width`]):
/// each block makes a complete forward/backward pass over the segment
/// before the next block starts, so the substitution scratch stays
/// L2-resident. Lanes are independent, so blocking cannot change any
/// lane's bits. Lanes with `active[j] == false` are computed but not
/// applied (their voltages — and deltas — stay exactly as they are),
/// which keeps every active lane's arithmetic bitwise identical to the
/// scalar kernel. Per-lane maxima of the applied updates accumulate
/// into `delta`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn solve_segment_batch<V: VoltView>(
    topo: &Topo,
    seg: Segment,
    injection: &[f64],
    omega: f64,
    k: usize,
    active: &[bool],
    scratch: &mut [f64],
    view: &mut V,
    delta: &mut [f64],
) {
    let len = seg.len as usize;
    let bw = lane_block_width(len, k, std::mem::size_of::<f64>());
    let mut j0 = 0usize;
    while j0 < k {
        let w = bw.min(k - j0);
        solve_segment_batch_block(
            topo, seg, injection, omega, k, j0, w, active, scratch, view, delta,
        );
        j0 += w;
    }
}

/// One lane block of [`solve_segment_batch`]: lanes `j0 .. j0 + bw` of
/// the `k`-wide batch, with the scratch packed at stride `bw`. The
/// inner loops are unit-stride fused multiply-adds over the block (the
/// same per-element operations as the scalar kernel, in the same term
/// order).
#[allow(clippy::too_many_arguments)]
#[inline]
fn solve_segment_batch_block<V: VoltView>(
    topo: &Topo,
    seg: Segment,
    injection: &[f64],
    omega: f64,
    k: usize,
    j0: usize,
    bw: usize,
    active: &[bool],
    scratch: &mut [f64],
    view: &mut V,
    delta: &mut [f64],
) {
    let (w, h) = (topo.width, topo.height);
    let (g_h, g_v) = (topo.g_h, topo.g_v);
    let fixed = &topo.fixed;
    let factors = &topo.factors;
    let y = seg.row as usize;
    let start = seg.start as usize;
    let len = seg.len as usize;
    let row0 = y * w;
    let offset = seg.offset as usize;
    // Forward pass: build each row of right-hand sides from the frozen
    // neighbours (same term order as the scalar kernel) and eliminate.
    for i in 0..len {
        let gx = start + i;
        let node = row0 + gx;
        let base = node * k + j0;
        let (done, rest) = scratch.split_at_mut(i * bw);
        let row = &mut rest[..bw];
        row.copy_from_slice(&injection[base..base + bw]);
        if gx > 0 && fixed[node - 1] {
            let nb = (node - 1) * k + j0;
            for (j, b) in row.iter_mut().enumerate() {
                *b = g_h.mul_add(view.get(nb + j), *b);
            }
        }
        if gx + 1 < w && fixed[node + 1] {
            let nb = (node + 1) * k + j0;
            for (j, b) in row.iter_mut().enumerate() {
                *b = g_h.mul_add(view.get(nb + j), *b);
            }
        }
        if y > 0 {
            let nb = (node - w) * k + j0;
            for (j, b) in row.iter_mut().enumerate() {
                *b = g_v.mul_add(view.get(nb + j), *b);
            }
        }
        if y + 1 < h {
            let nb = (node + w) * k + j0;
            for (j, b) in row.iter_mut().enumerate() {
                *b = g_v.mul_add(view.get(nb + j), *b);
            }
        }
        let prev = if i == 0 {
            None
        } else {
            Some(&done[(i - 1) * bw..])
        };
        factors.forward_row(offset + i, row, prev);
    }
    // Backward pass: substitute row by row (in place in the scratch) and
    // apply the relaxed update for the active lanes.
    for i in (0..len).rev() {
        let (head, tail) = scratch.split_at_mut((i + 1) * bw);
        let row = &mut head[i * bw..];
        let next = if i + 1 == len {
            None
        } else {
            Some(&tail[..bw])
        };
        factors.backward_row(offset + i, row, next);
        let node = row0 + start + i;
        let base = node * k + j0;
        for (j, &xi) in row.iter().enumerate() {
            let old = view.get(base + j);
            let relaxed = omega.mul_add(xi - old, old);
            let new = if active[j0 + j] { relaxed } else { old };
            let d = (new - old).abs();
            if d > delta[j0 + j] {
                delta[j0 + j] = d;
            }
            view.set(base + j, new);
        }
    }
}

/// Compacted [`solve_segment_batch`]: sweeps only the lanes listed in
/// `ids` — gather their right-hand sides into `ids.len()`-wide rows,
/// substitute, scatter the relaxed updates back. Frozen lanes are never
/// read or written, and each listed lane runs exactly the arithmetic of
/// the full kernel, bit for bit.
#[allow(clippy::too_many_arguments)]
#[inline]
fn solve_segment_batch_ids<V: VoltView>(
    topo: &Topo,
    seg: Segment,
    injection: &[f64],
    omega: f64,
    k: usize,
    ids: &[u32],
    scratch: &mut [f64],
    view: &mut V,
    delta: &mut [f64],
) {
    let m = ids.len();
    let (w, h) = (topo.width, topo.height);
    let (g_h, g_v) = (topo.g_h, topo.g_v);
    let fixed = &topo.fixed;
    let factors = &topo.factors;
    let y = seg.row as usize;
    let start = seg.start as usize;
    let len = seg.len as usize;
    let row0 = y * w;
    let offset = seg.offset as usize;
    for i in 0..len {
        let gx = start + i;
        let node = row0 + gx;
        let base = node * k;
        let (done, rest) = scratch.split_at_mut(i * m);
        let row = &mut rest[..m];
        for (b, &j) in row.iter_mut().zip(ids) {
            *b = injection[base + j as usize];
        }
        if gx > 0 && fixed[node - 1] {
            let nb = (node - 1) * k;
            for (b, &j) in row.iter_mut().zip(ids) {
                *b = g_h.mul_add(view.get(nb + j as usize), *b);
            }
        }
        if gx + 1 < w && fixed[node + 1] {
            let nb = (node + 1) * k;
            for (b, &j) in row.iter_mut().zip(ids) {
                *b = g_h.mul_add(view.get(nb + j as usize), *b);
            }
        }
        if y > 0 {
            let nb = (node - w) * k;
            for (b, &j) in row.iter_mut().zip(ids) {
                *b = g_v.mul_add(view.get(nb + j as usize), *b);
            }
        }
        if y + 1 < h {
            let nb = (node + w) * k;
            for (b, &j) in row.iter_mut().zip(ids) {
                *b = g_v.mul_add(view.get(nb + j as usize), *b);
            }
        }
        let prev = if i == 0 {
            None
        } else {
            Some(&done[(i - 1) * m..])
        };
        factors.forward_row(offset + i, row, prev);
    }
    for i in (0..len).rev() {
        let (head, tail) = scratch.split_at_mut((i + 1) * m);
        let row = &mut head[i * m..];
        let next = if i + 1 == len { None } else { Some(&tail[..m]) };
        factors.backward_row(offset + i, row, next);
        let node = row0 + start + i;
        let base = node * k;
        for (&xi, &j) in row.iter().zip(ids) {
            let j = j as usize;
            let old = view.get(base + j);
            let new = omega.mul_add(xi - old, old);
            let d = (new - old).abs();
            if d > delta[j] {
                delta[j] = d;
            }
            view.set(base + j, new);
        }
    }
}

/// Exact f64 residual `r = b − A·v` of the tier system, narrowed to f32
/// for the mixed-precision correction solve. Rows of pinned nodes are
/// zero (their voltages are exact by definition); every free row
/// accumulates the diagonal and all existing neighbour couplings in f64
/// before the single final narrowing, so the correction targets the true
/// remaining error, not an f32 approximation of it.
fn compute_residual_f32(
    topo: &Topo,
    injection: &[f64],
    v: &[f64],
    k: usize,
    rrow: &mut [f64],
    r32: &mut [f32],
) {
    let (w, h) = (topo.width, topo.height);
    let (g_h, g_v) = (topo.g_h, topo.g_v);
    // One unit-stride pass per coupling term over the node's lane row
    // (accumulated in the f64 `rrow` scratch), in the same term order as
    // the scalar chain — slice windows keep every loop branch-free and
    // vectorizable, and the result is bit-for-bit the scalar one.
    let rrow = &mut rrow[..k];
    for node in 0..topo.n() {
        let base = node * k;
        if topo.fixed[node] {
            r32[base..base + k].fill(0.0);
            continue;
        }
        let x = node % w;
        let y = node / w;
        let neg_d = -topo.diag[node];
        let vc = &v[base..base + k];
        let inj = &injection[base..base + k];
        for j in 0..k {
            rrow[j] = neg_d.mul_add(vc[j], inj[j]);
        }
        if x > 0 {
            let vn = &v[base - k..base];
            for j in 0..k {
                rrow[j] = g_h.mul_add(vn[j], rrow[j]);
            }
        }
        if x + 1 < w {
            let vn = &v[base + k..base + 2 * k];
            for j in 0..k {
                rrow[j] = g_h.mul_add(vn[j], rrow[j]);
            }
        }
        if y > 0 {
            let vn = &v[base - w * k..base - w * k + k];
            for j in 0..k {
                rrow[j] = g_v.mul_add(vn[j], rrow[j]);
            }
        }
        if y + 1 < h {
            let vn = &v[base + w * k..base + w * k + k];
            for j in 0..k {
                rrow[j] = g_v.mul_add(vn[j], rrow[j]);
            }
        }
        let out = &mut r32[base..base + k];
        for j in 0..k {
            out[j] = rrow[j] as f32;
        }
    }
}

/// One f32 correction sweep under the engine's schedule (both colors for
/// red-black, alternating direction via `downward` for sequential).
/// Always runs on the calling thread: the mixed path's iterates are
/// identical at every parallelism setting.
#[allow(clippy::too_many_arguments)]
fn mixed_sweep(
    topo: &Topo,
    schedule: SweepSchedule,
    downward: bool,
    r32: &[f32],
    d32: &mut [f32],
    omega: f32,
    k: usize,
    active: &[bool],
    scratch: &mut [f32],
    dmax: &mut [f32],
) {
    match schedule {
        SweepSchedule::Sequential => {
            let nseg = topo.segments.len();
            for s in 0..nseg {
                let si = if downward { s } else { nseg - 1 - s };
                solve_segment_batch_f32(
                    topo,
                    topo.segments[si],
                    r32,
                    omega,
                    k,
                    active,
                    scratch,
                    d32,
                    dmax,
                );
            }
        }
        SweepSchedule::RedBlack { .. } => {
            for idx in [&topo.red_idx, &topo.black_idx] {
                for &si in idx.iter() {
                    solve_segment_batch_f32(
                        topo,
                        topo.segments[si as usize],
                        r32,
                        omega,
                        k,
                        active,
                        scratch,
                        d32,
                        dmax,
                    );
                }
            }
        }
    }
}

/// f32 twin of [`solve_segment_batch`] for the mixed-precision
/// correction system: sweeps one prefactored segment for all `k` lanes
/// of the correction image `d32` against the f32 right-hand sides `r32`,
/// through the [`FactoredSegmentsF32`] mirror. Same node-major/
/// lane-minor layout, same cache-sized lane blocking (f32 elements pack
/// twice as many lanes per block), same active-lane gating. Operates on
/// plain slices — the mixed path is single-threaded by design.
#[allow(clippy::too_many_arguments)]
#[inline]
fn solve_segment_batch_f32(
    topo: &Topo,
    seg: Segment,
    r32: &[f32],
    omega: f32,
    k: usize,
    active: &[bool],
    scratch: &mut [f32],
    d32: &mut [f32],
    dmax: &mut [f32],
) {
    let len = seg.len as usize;
    // Fused singleton path: a one-node segment's correction equation has
    // no horizontal terms at all (its neighbours are pinned, so their
    // correction is identically zero) and its forward elimination is a
    // single reciprocal-pivot multiply. Checkerboard-pinned tiers — the
    // paper's TSV regime — are half singletons, so skipping the lane
    // blocking and the row-kernel calls here matters. The arithmetic is
    // the exact op chain of the general path (copy, vertical `mul_add`s,
    // `* inv_m`, relax), so the iterates are bit-for-bit identical.
    if len == 1 {
        let w = topo.width;
        let node = seg.row as usize * w + seg.start as usize;
        let base = node * k;
        let inv_m = topo.factors32.inv_m(seg.offset as usize);
        let g_v = topo.g_v as f32;
        let row = &mut scratch[..k];
        row.copy_from_slice(&r32[base..base + k]);
        if node >= w {
            let up = &d32[base - w * k..base - w * k + k];
            for j in 0..k {
                row[j] = g_v.mul_add(up[j], row[j]);
            }
        }
        if node + w < topo.n() {
            let down = &d32[base + w * k..base + w * k + k];
            for j in 0..k {
                row[j] = g_v.mul_add(down[j], row[j]);
            }
        }
        let drow = &mut d32[base..base + k];
        for j in 0..k {
            let xi = row[j] * inv_m;
            let old = drow[j];
            let relaxed = omega.mul_add(xi - old, old);
            let new = if active[j] { relaxed } else { old };
            let d = (new - old).abs();
            if d > dmax[j] {
                dmax[j] = d;
            }
            drow[j] = new;
        }
        return;
    }
    let bw = lane_block_width(len, k, std::mem::size_of::<f32>());
    let mut j0 = 0usize;
    while j0 < k {
        let w = bw.min(k - j0);
        solve_segment_batch_f32_block(topo, seg, r32, omega, k, j0, w, active, scratch, d32, dmax);
        j0 += w;
    }
}

/// One lane block of [`solve_segment_batch_f32`] (lanes `j0 .. j0 + bw`,
/// scratch packed at stride `bw`).
#[allow(clippy::too_many_arguments)]
#[inline]
fn solve_segment_batch_f32_block(
    topo: &Topo,
    seg: Segment,
    r32: &[f32],
    omega: f32,
    k: usize,
    j0: usize,
    bw: usize,
    active: &[bool],
    scratch: &mut [f32],
    d32: &mut [f32],
    dmax: &mut [f32],
) {
    let (w, h) = (topo.width, topo.height);
    let g_v = topo.g_v as f32;
    let factors = &topo.factors32;
    let y = seg.row as usize;
    let start = seg.start as usize;
    let len = seg.len as usize;
    let row0 = y * w;
    let offset = seg.offset as usize;
    for i in 0..len {
        let gx = start + i;
        let node = row0 + gx;
        let base = node * k + j0;
        let (done, rest) = scratch.split_at_mut(i * bw);
        let row = &mut rest[..bw];
        row.copy_from_slice(&r32[base..base + bw]);
        // The correction is zero at pinned nodes by construction, so the
        // fixed-horizontal-neighbour terms of the f64 kernel vanish here;
        // only the vertical couplings feed back between sweeps.
        if y > 0 {
            let nb = (node - w) * k + j0;
            for (j, b) in row.iter_mut().enumerate() {
                *b = g_v.mul_add(d32[nb + j], *b);
            }
        }
        if y + 1 < h {
            let nb = (node + w) * k + j0;
            for (j, b) in row.iter_mut().enumerate() {
                *b = g_v.mul_add(d32[nb + j], *b);
            }
        }
        let prev = if i == 0 {
            None
        } else {
            Some(&done[(i - 1) * bw..])
        };
        factors.forward_row(offset + i, row, prev);
    }
    for i in (0..len).rev() {
        let (head, tail) = scratch.split_at_mut((i + 1) * bw);
        let row = &mut head[i * bw..];
        let next = if i + 1 == len {
            None
        } else {
            Some(&tail[..bw])
        };
        factors.backward_row(offset + i, row, next);
        let node = row0 + start + i;
        let base = node * k + j0;
        for (j, &xi) in row.iter().enumerate() {
            let old = d32[base + j];
            let relaxed = omega.mul_add(xi - old, old);
            let new = if active[j0 + j] { relaxed } else { old };
            let d = (new - old).abs();
            if d > dmax[j0 + j] {
                dmax[j0 + j] = d;
            }
            d32[base + j] = new;
        }
    }
}

/// Splits `idx` into `threads` contiguous chunks with approximately equal
/// total node counts (rows can have very different free-node counts when
/// pins cluster).
fn balance_chunks(segments: &[Segment], idx: &[u32], threads: usize) -> Vec<Range<usize>> {
    let total: usize = idx.iter().map(|&i| segments[i as usize].len as usize).sum();
    let mut chunks = Vec::with_capacity(threads);
    let mut pos = 0usize;
    let mut acc = 0usize;
    for t in 0..threads {
        let begin = pos;
        if t + 1 == threads {
            pos = idx.len();
        } else {
            let target = total * (t + 1) / threads;
            while pos < idx.len() && acc < target {
                acc += segments[idx[pos] as usize].len as usize;
                pos += 1;
            }
        }
        chunks.push(begin..pos);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowbased::RowBased;

    fn random_problem(seed: u64, w: usize, h: usize) -> (Vec<bool>, Vec<f64>, Vec<f64>) {
        let n = w * h;
        let mut s = seed.wrapping_add(11);
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let mut fixed = vec![false; n];
        let mut v = vec![1.8; n];
        for i in 0..n {
            if rnd() < 0.25 {
                fixed[i] = true;
                v[i] = 1.7 + 0.2 * rnd();
            }
        }
        fixed[0] = true;
        let injection: Vec<f64> = (0..n)
            .map(|i| if fixed[i] { 0.0 } else { -1e-4 * rnd() })
            .collect();
        (fixed, v, injection)
    }

    fn engine(w: usize, h: usize, fixed: &[bool], schedule: SweepSchedule) -> TierEngine {
        TierEngine::new(w, h, 1.25, 0.8, Arc::from(fixed), None, schedule).unwrap()
    }

    #[test]
    fn sequential_engine_matches_generic_rowbased() {
        for seed in [1u64, 5, 23] {
            let (w, h) = (13, 9);
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v_engine = v0.clone();
            engine(w, h, &fixed, SweepSchedule::Sequential)
                .solve(&injection, &mut v_engine, 1e-11, 100_000)
                .unwrap();

            let mut v_ref = v0.clone();
            let problem = TierProblem {
                width: w,
                height: h,
                g_h: 1.25,
                g_v: 0.8,
                fixed: &fixed,
                extra_diag: &vec![0.0; w * h],
                injection: &injection,
            };
            RowBased {
                tolerance: 1e-11,
                ..Default::default()
            }
            .solve_tier(&problem, &mut v_ref)
            .unwrap();
            for i in 0..w * h {
                assert!(
                    (v_engine[i] - v_ref[i]).abs() < 1e-8,
                    "seed {seed} node {i}: engine {} vs rowbased {}",
                    v_engine[i],
                    v_ref[i]
                );
            }
        }
    }

    #[test]
    fn redblack_is_thread_count_invariant() {
        for seed in [2u64, 7] {
            let (w, h) = (17, 12);
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v1 = v0.clone();
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
                .solve(&injection, &mut v1, 1e-10, 100_000)
                .unwrap();
            for threads in [2usize, 4] {
                let mut vt = v0.clone();
                engine(w, h, &fixed, SweepSchedule::RedBlack { threads })
                    .solve(&injection, &mut vt, 1e-10, 100_000)
                    .unwrap();
                assert_eq!(
                    v1, vt,
                    "seed {seed}, {threads} threads must be bitwise equal"
                );
            }
        }
    }

    #[test]
    fn pool_and_scoped_dispatch_are_bitwise_identical() {
        let (w, h) = (19, 14);
        let (fixed, v0, injection) = random_problem(6, w, h);
        let mut v_pool = v0.clone();
        let rep_pool = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 3 })
            .solve(&injection, &mut v_pool, 1e-10, 100_000)
            .unwrap();
        let mut v_scoped = v0.clone();
        let mut e = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 3 });
        e.set_dispatch(ParDispatch::ScopedSpawn);
        assert_eq!(e.dispatch(), ParDispatch::ScopedSpawn);
        let rep_scoped = e.solve(&injection, &mut v_scoped, 1e-10, 100_000).unwrap();
        assert_eq!(v_pool, v_scoped);
        assert_eq!(rep_pool.iterations, rep_scoped.iterations);
        assert_eq!(rep_pool.residual.to_bits(), rep_scoped.residual.to_bits());
    }

    #[test]
    fn redblack_agrees_with_sequential_solution() {
        let (w, h) = (20, 15);
        let (fixed, v0, injection) = random_problem(3, w, h);
        let mut v_seq = v0.clone();
        engine(w, h, &fixed, SweepSchedule::Sequential)
            .solve(&injection, &mut v_seq, 1e-12, 200_000)
            .unwrap();
        let mut v_rb = v0.clone();
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 3 })
            .solve(&injection, &mut v_rb, 1e-12, 200_000)
            .unwrap();
        let worst = v_seq
            .iter()
            .zip(&v_rb)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= 1e-9, "schedules disagree by {worst} V");
    }

    #[test]
    fn sweep_once_parallel_matches_single_thread() {
        let (w, h) = (11, 8);
        let (fixed, v0, injection) = random_problem(9, w, h);
        let mut v1 = v0.clone();
        let mut e1 = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 });
        let d1 = e1.sweep_once(&injection, &mut v1, true, 1.0).unwrap();
        let mut v4 = v0.clone();
        let mut e4 = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 4 });
        let d4 = e4.sweep_once(&injection, &mut v4, true, 1.0).unwrap();
        assert_eq!(v1, v4);
        assert_eq!(d1, d4);
    }

    #[test]
    fn budget_exhaustion_is_error_on_both_paths() {
        let (w, h) = (16, 16);
        let mut fixed = vec![false; w * h];
        fixed[0] = true;
        let injection = vec![0.0; w * h];
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 2 },
        ] {
            let mut v = vec![0.0; w * h];
            v[0] = 1.8;
            let err = TierEngine::new(w, h, 1.0, 1.0, Arc::from(&fixed[..]), None, schedule)
                .unwrap()
                .solve(&injection, &mut v, 1e-15, 2)
                .unwrap_err();
            assert!(
                matches!(err, SolverError::DidNotConverge { iterations: 2, .. }),
                "{schedule:?}: {err:?}"
            );
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let fixed: Arc<[bool]> = Arc::from(vec![false; 4]);
        assert!(TierEngine::new(
            3,
            2,
            1.0,
            1.0,
            fixed.clone(),
            None,
            SweepSchedule::Sequential
        )
        .is_err());
        let fixed6: Arc<[bool]> = Arc::from(vec![false; 6]);
        assert!(TierEngine::new(
            3,
            2,
            -1.0,
            1.0,
            fixed6.clone(),
            None,
            SweepSchedule::Sequential
        )
        .is_err());
        let mut ok =
            TierEngine::new(3, 2, 1.0, 1.0, fixed6, None, SweepSchedule::Sequential).unwrap();
        let mut v = vec![0.0; 6];
        assert!(ok.solve(&[0.0; 5], &mut v, 1e-6, 10).is_err());
        assert!(ok
            .solve_with_omega(&[0.0; 6], &mut v, 1e-6, 10, 2.5)
            .is_err());
    }

    #[test]
    fn parallelism_maps_to_schedule() {
        assert_eq!(
            SweepSchedule::from_parallelism(0),
            SweepSchedule::Sequential
        );
        assert_eq!(
            SweepSchedule::from_parallelism(1),
            SweepSchedule::Sequential
        );
        assert_eq!(
            SweepSchedule::from_parallelism(4),
            SweepSchedule::RedBlack { threads: 4 }
        );
        assert_eq!(SweepSchedule::RedBlack { threads: 0 }.threads(), 1);
    }

    #[test]
    fn compaction_crossover_covers_all_kernels() {
        assert_eq!(choose_batch_kernel(8, 8, true), BatchKernel::Full);
        assert_eq!(choose_batch_kernel(4, 8, true), BatchKernel::Full);
        assert_eq!(choose_batch_kernel(2, 8, true), BatchKernel::Scalar);
        assert_eq!(choose_batch_kernel(1, 64, true), BatchKernel::Scalar);
        assert_eq!(choose_batch_kernel(3, 64, true), BatchKernel::Scalar);
        assert_eq!(choose_batch_kernel(4, 64, true), BatchKernel::Compact);
        assert_eq!(choose_batch_kernel(16, 64, true), BatchKernel::Compact);
        // The measured full/compact tie sits at ~42 % occupancy; the
        // constant rounds it down to 3/8 so the tie-adjacent band uses
        // the flat-cost full kernel.
        assert_eq!(choose_batch_kernel(24, 64, true), BatchKernel::Compact);
        assert_eq!(choose_batch_kernel(25, 64, true), BatchKernel::Full);
        // Compaction disabled: always the full kernel (the PR 2 path).
        for m in 0..=8 {
            assert_eq!(choose_batch_kernel(m, 8, false), BatchKernel::Full);
        }
    }

    /// Manual re-measurement harness for the [`choose_batch_kernel`]
    /// crossover constants: times a fixed sweep budget through each
    /// kernel — forced, bypassing the crossover — at a range of active
    /// counts `m` with `k = 64` lanes. Not a regression test; run by
    /// hand whenever the sweep kernels change:
    ///
    /// ```text
    /// cargo test -p voltprop-solvers --release \
    ///     measure_batch_kernel_crossover -- --ignored --nocapture
    /// ```
    /// Manual timing harness: fixed-budget f64 vs mixed batched sweeps
    /// on the perfsuite kernels fixture (256×256 checkerboard, 64
    /// lanes). Not a regression test; run by hand whenever the sweep or
    /// refinement kernels change:
    ///
    /// ```text
    /// cargo test -p voltprop-solvers --release \
    ///     measure_mixed_round_split -- --ignored --nocapture
    /// ```
    #[test]
    #[ignore = "manual timing harness; run --release with --nocapture"]
    fn measure_mixed_round_split() {
        use std::time::Instant;
        let (edge, k) = (256usize, 64usize);
        let n = edge * edge;
        let mut fixed = vec![false; n];
        for y in (0..edge).step_by(2) {
            for x in (0..edge).step_by(2) {
                fixed[y * edge + x] = true;
            }
        }
        let mut eng = TierEngine::new(
            edge,
            edge,
            50.0,
            50.0,
            Arc::from(&fixed[..]),
            None,
            SweepSchedule::Sequential,
        )
        .unwrap();
        let mut injection = vec![0.0; n * k];
        let v0: Vec<f64> = vec![1.8; n * k];
        for i in 0..n {
            if fixed[i] {
                continue;
            }
            for j in 0..k {
                injection[i * k + j] = (0.75 + 0.5 * j as f64 / k as f64) * -5e-4;
            }
        }
        let mut lanes = vec![LaneReport::default(); k];
        for _ in 0..3 {
            let mut v = v0.clone();
            let t = Instant::now();
            eng.solve_batch_masked(&injection, &mut v, 0.0, 96, 1.0, None, &mut lanes)
                .unwrap();
            let f64_ms = t.elapsed().as_secs_f64() * 1e3;
            let mut v = v0.clone();
            let t = Instant::now();
            eng.solve_batch_masked_mixed(&injection, &mut v, 0.0, 96, 1.0, None, &mut lanes)
                .unwrap();
            let mixed_ms = t.elapsed().as_secs_f64() * 1e3;
            println!(
                "f64 {f64_ms:.1} ms  mixed {mixed_ms:.1} ms  ratio {:.3}",
                f64_ms / mixed_ms
            );
        }
    }

    #[test]
    #[ignore = "manual timing harness; run --release with --nocapture"]
    fn measure_batch_kernel_crossover() {
        use std::time::Instant;
        let (w, h, k) = (64usize, 64usize, 64usize);
        let (fixed, v0, injection) = random_problem(3, w, h);
        let v0 = interleave(&vec![v0; k]);
        let injections: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let scale = 0.5 + j as f64 / k as f64;
                injection.iter().map(|&b| scale * b).collect()
            })
            .collect();
        let injection = interleave(&injections);
        let mut eng = engine(w, h, &fixed, SweepSchedule::Sequential);
        eng.ensure_batch(k);
        let topo = Arc::clone(&eng.topo);
        let BatchState {
            scratch,
            active,
            delta,
            ids,
            ..
        } = &mut eng.batch;
        let sweeps = 400usize;
        println!("  m        full     compact      scalar   (ns/sweep, best of 3)");
        for m in [1usize, 2, 3, 4, 6, 8, 12, 16, 24, 32, 40, 48, 56, 64] {
            for (j, slot) in active.iter_mut().enumerate() {
                *slot = j < m;
            }
            for (j, slot) in ids[..m].iter_mut().enumerate() {
                *slot = j as u32;
            }
            let mut row = format!("{m:3}");
            for kernel in [BatchKernel::Full, BatchKernel::Compact, BatchKernel::Scalar] {
                let mut best = f64::INFINITY;
                for _rep in 0..3 {
                    let mut v = v0.clone();
                    let mut view = SliceView(&mut v);
                    let start = Instant::now();
                    for s in 0..sweeps {
                        delta.fill(0.0);
                        let nseg = topo.segments.len();
                        let downward = s % 2 == 0;
                        for i in 0..nseg {
                            let si = if downward { i } else { nseg - 1 - i };
                            batch_segment_dispatch(
                                kernel,
                                &topo,
                                topo.segments[si],
                                &injection,
                                1.0,
                                k,
                                active,
                                &ids[..m],
                                scratch,
                                &mut view,
                                delta,
                            );
                        }
                    }
                    best = best.min(start.elapsed().as_nanos() as f64 / sweeps as f64);
                }
                row.push_str(&format!("  {best:10.0}"));
            }
            println!("{row}");
        }
    }

    /// Interleaves lane-major vectors into the node-major batch layout.
    fn interleave(lanes: &[Vec<f64>]) -> Vec<f64> {
        let k = lanes.len();
        let n = lanes[0].len();
        let mut out = vec![0.0; n * k];
        for (j, lane) in lanes.iter().enumerate() {
            for i in 0..n {
                out[i * k + j] = lane[i];
            }
        }
        out
    }

    fn lane_of(batch: &[f64], j: usize, k: usize) -> Vec<f64> {
        batch.iter().skip(j).step_by(k).copied().collect()
    }

    /// Per-lane injections with different magnitudes so the lanes converge
    /// after different sweep counts (exercising the freeze logic).
    fn batch_fixture(
        seed: u64,
        w: usize,
        h: usize,
        k: usize,
    ) -> (Vec<bool>, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let (fixed, v0, injection) = random_problem(seed, w, h);
        let v0s = vec![v0; k];
        let injections: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let scale = 0.25 + 0.75 * j as f64;
                injection.iter().map(|&b| scale * b).collect()
            })
            .collect();
        (fixed, v0s, injections)
    }

    #[test]
    fn batch_lanes_are_bitwise_identical_to_solo_solves() {
        let (w, h, k) = (13, 9, 4);
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 1 },
            SweepSchedule::RedBlack { threads: 3 },
        ] {
            let (fixed, v0s, injections) = batch_fixture(6, w, h, k);
            let mut v = interleave(&v0s);
            let injection = interleave(&injections);
            let mut lanes = vec![LaneReport::default(); k];
            let agg = engine(w, h, &fixed, schedule)
                .solve_batch(&injection, &mut v, 1e-10, 100_000, &mut lanes)
                .unwrap();
            assert!(agg.converged, "{schedule:?}");
            for j in 0..k {
                let mut v_solo = v0s[j].clone();
                let rep = engine(w, h, &fixed, schedule)
                    .solve(&injections[j], &mut v_solo, 1e-10, 100_000)
                    .unwrap();
                assert_eq!(
                    lane_of(&v, j, k),
                    v_solo,
                    "{schedule:?} lane {j} must be bitwise identical"
                );
                assert_eq!(lanes[j].iterations, rep.iterations, "{schedule:?} lane {j}");
                assert_eq!(
                    lanes[j].residual.to_bits(),
                    rep.residual.to_bits(),
                    "{schedule:?} lane {j}"
                );
                assert!(lanes[j].converged);
            }
        }
    }

    #[test]
    fn batch_redblack_is_thread_count_invariant() {
        let (w, h, k) = (17, 12, 3);
        let (fixed, v0s, injections) = batch_fixture(8, w, h, k);
        let injection = interleave(&injections);
        let mut v1 = interleave(&v0s);
        let mut lanes1 = vec![LaneReport::default(); k];
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .solve_batch(&injection, &mut v1, 1e-10, 100_000, &mut lanes1)
            .unwrap();
        for threads in [2usize, 4] {
            let mut vt = interleave(&v0s);
            let mut lanes = vec![LaneReport::default(); k];
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads })
                .solve_batch(&injection, &mut vt, 1e-10, 100_000, &mut lanes)
                .unwrap();
            assert_eq!(v1, vt, "{threads} threads must be bitwise equal");
            assert_eq!(lanes, lanes1);
        }
    }

    #[test]
    fn compacted_batch_is_bitwise_identical_to_uncompacted() {
        // The compaction heuristic must not change any lane's iterate or
        // report, on any schedule, with or without an initial mask. The
        // staggered per-lane injections freeze lanes at different sweeps,
        // so a solve crosses full → compact → scalar kernels as it runs.
        let (w, h, k) = (15, 11, 8);
        let masks: [Option<Vec<bool>>; 2] = [
            None,
            Some((0..k).map(|j| j % 3 != 1).collect()), // some lanes frozen from the start
        ];
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 1 },
            SweepSchedule::RedBlack { threads: 3 },
        ] {
            for mask in &masks {
                let (fixed, v0s, injections) = batch_fixture(12, w, h, k);
                let injection = interleave(&injections);
                let mut v_on = interleave(&v0s);
                let mut lanes_on = vec![LaneReport::default(); k];
                let mut e_on = engine(w, h, &fixed, schedule);
                assert!(e_on.lane_compaction());
                e_on.solve_batch_masked(
                    &injection,
                    &mut v_on,
                    1e-10,
                    100_000,
                    1.0,
                    mask.as_deref(),
                    &mut lanes_on,
                )
                .unwrap();
                let mut v_off = interleave(&v0s);
                let mut lanes_off = vec![LaneReport::default(); k];
                let mut e_off = engine(w, h, &fixed, schedule);
                e_off.set_lane_compaction(false);
                e_off
                    .solve_batch_masked(
                        &injection,
                        &mut v_off,
                        1e-10,
                        100_000,
                        1.0,
                        mask.as_deref(),
                        &mut lanes_off,
                    )
                    .unwrap();
                let eq = v_on
                    .iter()
                    .zip(&v_off)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(
                    eq,
                    "{schedule:?} mask {:?}: voltages differ",
                    mask.is_some()
                );
                assert_eq!(
                    lanes_on,
                    lanes_off,
                    "{schedule:?} mask {:?}",
                    mask.is_some()
                );
            }
        }
    }

    #[test]
    fn compacted_batch_thread_count_invariant_under_mask() {
        // Compaction kicks in from sweep 0 with a sparse mask; iterates
        // must still be bitwise invariant in the thread count.
        let (w, h, k) = (17, 12, 8);
        let (fixed, v0s, injections) = batch_fixture(9, w, h, k);
        let injection = interleave(&injections);
        let mask: Vec<bool> = (0..k).map(|j| j == 2 || j == 5).collect();
        let mut v1 = interleave(&v0s);
        let mut lanes1 = vec![LaneReport::default(); k];
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .solve_batch_masked(
                &injection,
                &mut v1,
                1e-10,
                100_000,
                1.0,
                Some(&mask),
                &mut lanes1,
            )
            .unwrap();
        for threads in [2usize, 4] {
            let mut vt = interleave(&v0s);
            let mut lanes = vec![LaneReport::default(); k];
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads })
                .solve_batch_masked(
                    &injection,
                    &mut vt,
                    1e-10,
                    100_000,
                    1.0,
                    Some(&mask),
                    &mut lanes,
                )
                .unwrap();
            assert_eq!(v1, vt, "{threads} threads must be bitwise equal");
            assert_eq!(lanes, lanes1);
        }
    }

    #[test]
    fn masked_lanes_stay_untouched() {
        let (w, h, k) = (11, 8, 3);
        let (fixed, v0s, injections) = batch_fixture(4, w, h, k);
        let injection = interleave(&injections);
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 2 },
        ] {
            let mut v = interleave(&v0s);
            let before = lane_of(&v, 1, k);
            let mask = [true, false, true];
            let mut lanes = vec![LaneReport::default(); k];
            engine(w, h, &fixed, schedule)
                .solve_batch_masked(
                    &injection,
                    &mut v,
                    1e-10,
                    100_000,
                    1.0,
                    Some(&mask),
                    &mut lanes,
                )
                .unwrap();
            assert_eq!(lane_of(&v, 1, k), before, "{schedule:?}");
            assert_eq!(lanes[1].iterations, 0);
            assert!(lanes[1].converged);
            // The active lanes still match their solo solves.
            let mut v_solo = v0s[0].clone();
            engine(w, h, &fixed, schedule)
                .solve(&injections[0], &mut v_solo, 1e-10, 100_000)
                .unwrap();
            assert_eq!(lane_of(&v, 0, k), v_solo, "{schedule:?}");
        }
    }

    #[test]
    fn batch_budget_exhaustion_reports_per_lane() {
        let (w, h) = (16, 16);
        let mut fixed = vec![false; w * h];
        fixed[0] = true;
        let k = 2;
        // Lane 0 trivially converged (zero injection, uniform start);
        // lane 1 needs real work but only gets 2 sweeps.
        let v0s = vec![vec![1.8; w * h], {
            let mut v = vec![0.0; w * h];
            v[0] = 1.8;
            v
        }];
        let injections = vec![vec![0.0; w * h]; k];
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 2 },
        ] {
            let mut v = interleave(&v0s);
            let injection = interleave(&injections);
            let mut lanes = vec![LaneReport::default(); k];
            let agg = engine(w, h, &fixed, schedule)
                .solve_batch(&injection, &mut v, 1e-12, 2, &mut lanes)
                .unwrap();
            assert!(!agg.converged, "{schedule:?}");
            assert!(lanes[0].converged, "{schedule:?}");
            assert!(!lanes[1].converged, "{schedule:?}");
            assert_eq!(lanes[1].iterations, 2);
            assert!(
                lanes[1].residual.is_finite() && lanes[1].residual > 1e-12,
                "{schedule:?}: lane 1 residual {}",
                lanes[1].residual
            );
            assert_eq!(agg.residual.to_bits(), lanes[1].residual.to_bits());
        }
    }

    #[test]
    fn batch_rejects_invalid_inputs() {
        let mut e = engine(6, 4, &[false; 24], SweepSchedule::Sequential);
        let mut lanes = vec![LaneReport::default(); 2];
        let mut v = vec![0.0; 48];
        let inj = vec![0.0; 48];
        // Wrong array length.
        assert!(e
            .solve_batch(&inj[..47], &mut v, 1e-6, 10, &mut lanes)
            .is_err());
        // Empty batch.
        assert!(e.solve_batch(&[], &mut [], 1e-6, 10, &mut []).is_err());
        // Bad mask length.
        assert!(e
            .solve_batch_masked(&inj, &mut v, 1e-6, 10, 1.0, Some(&[true]), &mut lanes)
            .is_err());
        // Bad omega.
        assert!(e
            .solve_batch_with_omega(&inj, &mut v, 1e-6, 10, 2.5, &mut lanes)
            .is_err());
    }

    #[test]
    fn pool_reuse_across_engine_sizes_is_correct_and_bounded() {
        // One isolated pool serves engines of very different sizes in
        // alternation: results must match fresh solves and the pinned
        // worker scratch must stop growing after the largest engine has
        // been seen once.
        let pool = Arc::new(WorkerPool::new());
        let sizes = [(26usize, 19usize, 3u64), (8, 6, 4), (26, 19, 3), (8, 6, 4)];
        let mut reference: Vec<Vec<f64>> = Vec::new();
        // Pass 1 (cold): collect reference solutions from fresh engines.
        for &(w, h, seed) in &sizes {
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v = v0.clone();
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 3 })
                .solve(&injection, &mut v, 1e-10, 100_000)
                .unwrap();
            reference.push(v);
        }
        let run_cycle = |pool: &Arc<WorkerPool>| {
            for (i, &(w, h, seed)) in sizes.iter().enumerate() {
                let (fixed, v0, injection) = random_problem(seed, w, h);
                let mut e = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 3 });
                e.set_pool(Arc::clone(pool));
                let mut v = v0.clone();
                e.solve(&injection, &mut v, 1e-10, 100_000).unwrap();
                assert_eq!(v, reference[i], "size case {i}");
                // A batched solve on the same pool exercises the batch
                // scratch sizing too.
                let k = 3;
                let inj_b = interleave(&vec![injection.clone(); k]);
                let mut v_b = interleave(&vec![v0.clone(); k]);
                let mut lanes = vec![LaneReport::default(); k];
                e.solve_batch(&inj_b, &mut v_b, 1e-10, 100_000, &mut lanes)
                    .unwrap();
                for j in 0..k {
                    assert_eq!(lane_of(&v_b, j, k), reference[i], "size case {i} lane {j}");
                }
            }
        };
        run_cycle(&pool);
        let after_first = pool.scratch_bytes();
        assert!(after_first > 0);
        run_cycle(&pool);
        run_cycle(&pool);
        assert_eq!(
            pool.scratch_bytes(),
            after_first,
            "pool scratch must not grow when engine sizes alternate"
        );
        assert_eq!(pool.workers_spawned(), 2);
    }

    #[test]
    fn mixed_solve_matches_f64_solution() {
        for (seed, schedule) in [
            (1u64, SweepSchedule::Sequential),
            (5, SweepSchedule::RedBlack { threads: 1 }),
            (23, SweepSchedule::RedBlack { threads: 1 }),
        ] {
            let (w, h) = (13, 9);
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v_f64 = v0.clone();
            engine(w, h, &fixed, schedule)
                .solve(&injection, &mut v_f64, 1e-11, 100_000)
                .unwrap();
            let mut v_mixed = v0.clone();
            let report = engine(w, h, &fixed, schedule)
                .solve_mixed(&injection, &mut v_mixed, 1e-10, 1_000_000)
                .unwrap();
            assert!(report.converged);
            let worst = v_f64
                .iter()
                .zip(&v_mixed)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst <= 1e-8,
                "seed {seed} {schedule:?}: mixed deviates by {worst} V"
            );
        }
    }

    #[test]
    fn mixed_batch_lanes_are_bitwise_identical_to_solo_mixed() {
        let (w, h) = (14, 10);
        // Lane counts straddle the f32 lane-block width.
        for k in [1usize, 3, 9] {
            // All lanes share one topology (the seed-40 pin mask); each
            // lane's injection is perturbed deterministically so lanes
            // genuinely differ.
            let (fixed, _, _) = random_problem(40, w, h);
            let mut solo = Vec::new();
            for j in 0..k {
                let (_, v0, injection) = random_problem(40, w, h);
                let mut inj = injection;
                for (i, x) in inj.iter_mut().enumerate() {
                    if !fixed[i] {
                        *x *= 1.0 + 0.1 * j as f64 + 1e-3 * (i % 7) as f64;
                    }
                }
                let mut v = v0.clone();
                engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
                    .solve_mixed_with_omega(&inj, &mut v, 1e-9, 1_000_000, 1.2)
                    .unwrap();
                solo.push((inj, v0, v));
            }
            let inj_b = interleave(&solo.iter().map(|s| s.0.clone()).collect::<Vec<_>>());
            let mut v_b = interleave(&solo.iter().map(|s| s.1.clone()).collect::<Vec<_>>());
            let mut lanes = vec![LaneReport::default(); k];
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
                .solve_batch_masked_mixed(&inj_b, &mut v_b, 1e-9, 1_000_000, 1.2, None, &mut lanes)
                .unwrap();
            for (j, lane) in lanes.iter().enumerate() {
                assert!(lane.converged, "k {k} lane {j} did not converge");
                assert_eq!(
                    lane_of(&v_b, j, k),
                    solo[j].2,
                    "k {k} lane {j} must match solo mixed bitwise"
                );
            }
        }
    }

    #[test]
    fn mixed_is_parallelism_invariant() {
        let (w, h) = (17, 12);
        let (fixed, v0, injection) = random_problem(7, w, h);
        let mut v1 = v0.clone();
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .solve_mixed(&injection, &mut v1, 1e-9, 1_000_000)
            .unwrap();
        let mut v4 = v0.clone();
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 4 })
            .solve_mixed(&injection, &mut v4, 1e-9, 1_000_000)
            .unwrap();
        assert_eq!(v1, v4, "mixed refinement must not depend on parallelism");
    }

    #[test]
    fn mixed_starved_budget_reports_unconverged() {
        let (w, h) = (16, 16);
        let (fixed, v0, injection) = random_problem(8, w, h);
        let err = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .solve_mixed(&injection, &mut v0.clone(), 1e-12, 3)
            .unwrap_err();
        assert!(
            matches!(err, SolverError::DidNotConverge { iterations: 3, .. }),
            "{err:?}"
        );
        let k = 2;
        let inj_b = interleave(&vec![injection.clone(); k]);
        let mut v_b = interleave(&vec![v0.clone(); k]);
        let mut lanes = vec![LaneReport::default(); k];
        let report = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .solve_batch_masked_mixed(&inj_b, &mut v_b, 1e-12, 3, 1.0, None, &mut lanes)
            .unwrap();
        assert!(!report.converged);
        for lane in &lanes {
            assert!(!lane.converged, "starved lane must report converged=false");
            assert!(lane.residual.is_finite() && lane.residual > 1e-12);
        }
    }

    #[test]
    fn mixed_warm_solves_do_not_grow_workspace() {
        let (w, h) = (20, 15);
        let (fixed, v0, injection) = random_problem(3, w, h);
        let mut e = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 });
        let mut v = v0.clone();
        e.solve_mixed(&injection, &mut v, 1e-9, 1_000_000).unwrap();
        let after_first = e.memory_bytes();
        for _ in 0..3 {
            let mut v = v0.clone();
            e.solve_mixed(&injection, &mut v, 1e-9, 1_000_000).unwrap();
        }
        assert_eq!(
            e.memory_bytes(),
            after_first,
            "warm mixed solves must reuse the sized f32 workspace"
        );
    }

    #[test]
    fn chunks_cover_all_segments_without_overlap() {
        let (w, h) = (31, 23);
        let (fixed, _, _) = random_problem(4, w, h);
        let e = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 5 });
        let topo = &e.topo;
        for (idx, chunks) in [
            (&topo.red_idx, &topo.red_chunks),
            (&topo.black_idx, &topo.black_chunks),
        ] {
            assert_eq!(chunks.len(), 5);
            let mut covered = 0usize;
            let mut expect_begin = 0usize;
            for c in chunks.iter() {
                assert_eq!(c.start, expect_begin, "chunks must be contiguous");
                expect_begin = c.end;
                covered += c.len();
            }
            assert_eq!(covered, idx.len());
            assert_eq!(expect_begin, idx.len());
        }
    }

    fn sharded_engine(
        w: usize,
        h: usize,
        fixed: &[bool],
        threads: usize,
        shards: usize,
    ) -> TierEngine {
        TierEngine::new_sharded(
            w,
            h,
            1.25,
            0.8,
            Arc::from(fixed),
            None,
            SweepSchedule::RedBlack { threads },
            shards,
        )
        .unwrap()
    }

    #[test]
    fn shard_layout_covers_every_segment_exactly_once() {
        let (w, h) = (29, 17);
        let (fixed, _, _) = random_problem(8, w, h);
        for (threads, shards) in [(1usize, 2usize), (3, 4), (4, 17), (2, 5)] {
            let e = sharded_engine(w, h, &fixed, threads, shards);
            let lay = &e.shard.as_ref().unwrap().layout;
            assert_eq!(lay.num_shards(), shards.min(h));
            let mut seen = vec![0usize; e.topo.segments.len()];
            for band in &lay.bands {
                for &si in band.red.iter().chain(&band.black) {
                    let seg = e.topo.segments[si as usize];
                    let y = seg.row as usize;
                    assert!(y >= band.y0 && y < band.y1, "segment outside owned rows");
                    assert_eq!(y % 2 == 0, band.red.contains(&si));
                    seen[si as usize] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "threads {threads} shards {shards}"
            );
            let mut expect_begin = 0usize;
            for c in &lay.chunks {
                assert_eq!(c.start, expect_begin, "shard chunks must be contiguous");
                expect_begin = c.end;
            }
            assert_eq!(expect_begin, lay.num_shards());
            assert_eq!(lay.chunks.len(), threads);
        }
    }

    #[test]
    fn sharded_solve_is_bitwise_equal_to_unsharded_redblack() {
        let (w, h) = (17, 12);
        for seed in [2u64, 7] {
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v_ref = v0.clone();
            let rep_ref = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 2 })
                .solve(&injection, &mut v_ref, 1e-10, 100_000)
                .unwrap();
            for shards in [2usize, 3, 4, 12] {
                for threads in [1usize, 2, 3] {
                    let mut e = sharded_engine(w, h, &fixed, threads, shards);
                    assert_eq!(e.shards(), shards);
                    let mut v = v0.clone();
                    let rep = e.solve(&injection, &mut v, 1e-10, 100_000).unwrap();
                    assert_eq!(v, v_ref, "seed {seed} shards {shards} threads {threads}");
                    assert_eq!(rep.iterations, rep_ref.iterations);
                    assert_eq!(rep.residual.to_bits(), rep_ref.residual.to_bits());
                }
            }
        }
    }

    #[test]
    fn sharding_forces_redblack_schedule() {
        let (w, h) = (13, 9);
        let (fixed, v0, injection) = random_problem(5, w, h);
        let mut e = TierEngine::new_sharded(
            w,
            h,
            1.25,
            0.8,
            Arc::from(&fixed[..]),
            None,
            SweepSchedule::Sequential,
            2,
        )
        .unwrap();
        assert_eq!(e.schedule(), SweepSchedule::RedBlack { threads: 1 });
        let mut v = v0.clone();
        e.solve(&injection, &mut v, 1e-10, 100_000).unwrap();
        let mut v_rb = v0.clone();
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .solve(&injection, &mut v_rb, 1e-10, 100_000)
            .unwrap();
        assert_eq!(v, v_rb);
    }

    #[test]
    fn sharded_sweep_once_matches_unsharded() {
        let (w, h) = (11, 8);
        let (fixed, v0, injection) = random_problem(9, w, h);
        let mut v1 = v0.clone();
        let d1 = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .sweep_once(&injection, &mut v1, true, 1.0)
            .unwrap();
        for (threads, shards) in [(1usize, 3usize), (2, 2), (3, 8)] {
            let mut e = sharded_engine(w, h, &fixed, threads, shards);
            let mut v = v0.clone();
            let d = e.sweep_once(&injection, &mut v, true, 1.0).unwrap();
            assert_eq!(v, v1, "threads {threads} shards {shards}");
            assert_eq!(d.to_bits(), d1.to_bits());
        }
    }

    #[test]
    fn sharded_batch_matches_unsharded_including_masks() {
        let (w, h, k) = (15, 11, 8);
        let (fixed, v0s, injections) = batch_fixture(12, w, h, k);
        let injection = interleave(&injections);
        let masks: [Option<Vec<bool>>; 2] = [None, Some((0..k).map(|j| j % 3 != 1).collect())];
        for mask in &masks {
            let mut v_ref = interleave(&v0s);
            let mut lanes_ref = vec![LaneReport::default(); k];
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 2 })
                .solve_batch_masked(
                    &injection,
                    &mut v_ref,
                    1e-10,
                    100_000,
                    1.0,
                    mask.as_deref(),
                    &mut lanes_ref,
                )
                .unwrap();
            for (shards, threads) in [(2usize, 1usize), (2, 3), (4, 2), (11, 2)] {
                let mut e = sharded_engine(w, h, &fixed, threads, shards);
                let mut v = interleave(&v0s);
                let mut lanes = vec![LaneReport::default(); k];
                e.solve_batch_masked(
                    &injection,
                    &mut v,
                    1e-10,
                    100_000,
                    1.0,
                    mask.as_deref(),
                    &mut lanes,
                )
                .unwrap();
                assert_eq!(
                    v,
                    v_ref,
                    "shards {shards} threads {threads} masked {}",
                    mask.is_some()
                );
                assert_eq!(lanes, lanes_ref);
            }
        }
    }

    #[test]
    fn sharded_batch_compaction_toggle_is_bitwise_neutral() {
        let (w, h, k) = (13, 10, 6);
        let (fixed, v0s, injections) = batch_fixture(4, w, h, k);
        let injection = interleave(&injections);
        let mut results = Vec::new();
        for compaction in [true, false] {
            let mut e = sharded_engine(w, h, &fixed, 2, 3);
            e.set_lane_compaction(compaction);
            let mut v = interleave(&v0s);
            let mut lanes = vec![LaneReport::default(); k];
            e.solve_batch(&injection, &mut v, 1e-10, 100_000, &mut lanes)
                .unwrap();
            results.push((v, lanes.to_vec()));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn sharded_mixed_matches_unsharded_redblack_mixed() {
        let (w, h) = (14, 10);
        let (fixed, v0, injection) = random_problem(7, w, h);
        let mut v_ref = v0.clone();
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .solve_mixed(&injection, &mut v_ref, 1e-9, 1_000_000)
            .unwrap();
        let mut e = sharded_engine(w, h, &fixed, 1, 4);
        let mut v = v0.clone();
        e.solve_mixed(&injection, &mut v, 1e-9, 1_000_000).unwrap();
        assert_eq!(v, v_ref);
    }

    #[test]
    fn sharded_budget_exhaustion_is_error() {
        let (w, h) = (9, 7);
        let (fixed, v0, injection) = random_problem(1, w, h);
        let mut e = sharded_engine(w, h, &fixed, 2, 2);
        let mut v = v0.clone();
        match e.solve(&injection, &mut v, 1e-14, 3) {
            Err(SolverError::DidNotConverge { iterations: 3, .. }) => {}
            other => panic!("expected 3-sweep budget error, got {other:?}"),
        }
        match e.solve(&injection, &mut v, 1e-14, 0) {
            Err(SolverError::DidNotConverge { iterations: 0, .. }) => {}
            other => panic!("expected 0-sweep budget error, got {other:?}"),
        }
    }

    #[test]
    fn sharded_warm_solves_do_not_grow_workspace_and_forks_match() {
        let (w, h) = (20, 15);
        let (fixed, v0, injection) = random_problem(3, w, h);
        let mut e = sharded_engine(w, h, &fixed, 2, 2);
        let mut v = v0.clone();
        e.solve(&injection, &mut v, 1e-10, 100_000).unwrap();
        let mut fork = e.fork();
        let mut v_fork = v0.clone();
        fork.solve(&injection, &mut v_fork, 1e-10, 100_000).unwrap();
        assert_eq!(v_fork, v);
        let after_first = e.memory_bytes();
        for _ in 0..3 {
            let mut v2 = v0.clone();
            e.solve(&injection, &mut v2, 1e-10, 100_000).unwrap();
            assert_eq!(v2, v);
        }
        assert_eq!(
            e.memory_bytes(),
            after_first,
            "warm sharded solves must reuse the halo images"
        );
        // The halo images and layout show up in the accounting.
        let plain = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 2 });
        assert!(e.memory_bytes() > plain.memory_bytes());
    }
}
