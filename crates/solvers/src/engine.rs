//! The prefactored row-sweep engine with red-black parallel scheduling.
//!
//! Row-based iteration treats each grid row as one block of a block
//! Gauss–Seidel iteration; pinned nodes cut a row into independent
//! tridiagonal segments. Two facts make the inner kernel fast:
//!
//! 1. **The segment matrices never change.** Across sweeps, outer
//!    iterations, and colors, only the right-hand sides move. The engine
//!    factors every segment once at construction into a shared
//!    [`FactoredSegments`] arena, so a sweep is pure forward/backward
//!    substitution (`3N` multiplies per row instead of the `5N-4` the
//!    paper quotes for a from-scratch Thomas pass) and never allocates.
//! 2. **Rows of one parity are independent.** A row couples only to the
//!    rows directly above and below it, so under a *red-black* coloring
//!    (even rows red, odd rows black) every red row can be solved
//!    simultaneously while the black rows are frozen, and vice versa.
//!    The [`SweepSchedule::RedBlack`] schedule exploits this to run row
//!    solves across OS threads; voltages live in an atomic buffer during
//!    the parallel solve, and barriers separate the two color phases.
//!
//! The red-black result is **deterministic in the thread count**: each
//! phase reads only other-color (frozen) and pinned values, so the update
//! of a row is independent of the order rows of its own color are
//! processed. `RedBlack { threads: 1 }` and `RedBlack { threads: 8 }`
//! produce bitwise-identical iterates; both converge to the same fixed
//! point as [`SweepSchedule::Sequential`] (the classic alternating
//! row-order sweep), which remains the default and the `parallelism = 1`
//! special case throughout the workspace.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use crate::rowbased::TierProblem;
use crate::{SolveReport, SolverError};
use voltprop_sparse::tridiag::FactoredSegments;

/// How a [`TierEngine`] orders its row solves within one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepSchedule {
    /// Row-ordered block Gauss–Seidel, alternating sweep direction — the
    /// paper's schedule and the strongest smoother per sweep.
    Sequential,
    /// Red-black row coloring: even rows update first (reading frozen odd
    /// rows), then odd rows. Rows within a color are solved concurrently
    /// on `threads` OS threads; results are identical for every
    /// `threads >= 1`.
    RedBlack {
        /// Worker threads for each color phase (clamped to at least 1).
        threads: usize,
    },
}

impl SweepSchedule {
    /// The schedule a `parallelism` knob maps to: `<= 1` stays on the
    /// sequential path, anything larger sweeps red-black on that many
    /// threads.
    pub fn from_parallelism(parallelism: usize) -> Self {
        if parallelism <= 1 {
            SweepSchedule::Sequential
        } else {
            SweepSchedule::RedBlack {
                threads: parallelism,
            }
        }
    }

    /// Number of worker threads this schedule uses.
    pub fn threads(&self) -> usize {
        match self {
            SweepSchedule::Sequential => 1,
            SweepSchedule::RedBlack { threads } => (*threads).max(1),
        }
    }
}

/// One tridiagonal row segment between pinned nodes.
#[derive(Debug, Clone, Copy)]
struct Segment {
    row: u32,
    start: u32,
    len: u32,
    /// Offset of this segment's coefficients in the factor arena.
    offset: u32,
}

/// Worker status codes for the persistent parallel solve loop.
const RUN: usize = 0;
const DONE: usize = 1;
const BUDGET: usize = 2;

/// A tier's prefactored row-sweep engine.
///
/// Built once per tier, reused across every sweep and outer iteration:
/// after construction the single-threaded schedules perform **no heap
/// allocation** on any solve or sweep path. The multi-threaded red-black
/// path additionally pays one scoped thread-pool spawn (a handful of
/// small allocations plus spawn latency) per [`TierEngine::solve`] call
/// — and per [`TierEngine::sweep_once`] call, so prefer whole solves
/// over per-sweep calls when sweeping in parallel.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use voltprop_solvers::{SweepSchedule, TierEngine};
///
/// # fn main() -> Result<(), voltprop_solvers::SolverError> {
/// let (w, h) = (8, 8);
/// let mut fixed = vec![false; w * h];
/// fixed[0] = true; // one pinned corner
/// let mut engine = TierEngine::new(
///     w, h, 1.0, 1.0, Arc::from(fixed), None,
///     SweepSchedule::RedBlack { threads: 2 },
/// )?;
/// let mut v = vec![0.0; w * h];
/// v[0] = 1.8;
/// let injection = vec![0.0; w * h];
/// let report = engine.solve(&injection, &mut v, 1e-9, 100_000)?;
/// assert!(report.converged);
/// assert!(v.iter().all(|&vi| (vi - 1.8).abs() < 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TierEngine {
    width: usize,
    height: usize,
    g_h: f64,
    g_v: f64,
    fixed: Arc<[bool]>,
    schedule: SweepSchedule,
    /// All segments in natural (row-major) order.
    segments: Vec<Segment>,
    /// Indices into `segments` for even (red) and odd (black) rows.
    red_idx: Vec<u32>,
    black_idx: Vec<u32>,
    /// Per-thread index ranges into `red_idx` / `black_idx`, balanced by
    /// node count.
    red_chunks: Vec<Range<usize>>,
    black_chunks: Vec<Range<usize>>,
    factors: FactoredSegments,
    /// Per-thread forward-substitution scratch.
    scratches: Vec<Vec<f64>>,
    /// Atomic voltage image used by multi-threaded sweeps (empty when the
    /// schedule runs on one thread).
    atomic_v: Vec<AtomicU64>,
    /// Per-thread max-|update| slots for the parallel reduction.
    deltas: Vec<AtomicU64>,
}

impl TierEngine {
    /// Factors a tier's row segments. `fixed` pins nodes (row-major mask),
    /// `extra_diag` adds optional per-node diagonal conductance (TSV or
    /// pad coupling to external potentials).
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent dimensions or
    /// non-positive conductances; [`SolverError::Sparse`] if a segment is
    /// singular (a free node with no neighbours and no extra diagonal).
    pub fn new(
        width: usize,
        height: usize,
        g_h: f64,
        g_v: f64,
        fixed: Arc<[bool]>,
        extra_diag: Option<&[f64]>,
        schedule: SweepSchedule,
    ) -> Result<Self, SolverError> {
        let n = width * height;
        if fixed.len() != n {
            return Err(SolverError::Unsupported {
                what: format!("pin mask must have {n} entries (got {})", fixed.len()),
            });
        }
        if let Some(e) = extra_diag {
            if e.len() != n {
                return Err(SolverError::Unsupported {
                    what: format!("extra_diag must have {n} entries (got {})", e.len()),
                });
            }
        }
        if !(g_h > 0.0 && g_v > 0.0) {
            return Err(SolverError::Unsupported {
                what: "conductances must be positive".into(),
            });
        }
        let threads = schedule.threads();

        let mut segments = Vec::new();
        let mut factors = FactoredSegments::new();
        // Segment-local coefficient buffers (setup only).
        let mut lower = Vec::new();
        let mut diag = Vec::new();
        let mut upper = Vec::new();
        for y in 0..height {
            let row0 = y * width;
            let mut x = 0usize;
            while x < width {
                if fixed[row0 + x] {
                    x += 1;
                    continue;
                }
                let start = x;
                while x < width && !fixed[row0 + x] {
                    x += 1;
                }
                let len = x - start;
                lower.clear();
                diag.clear();
                upper.clear();
                for i in 0..len {
                    let gx = start + i;
                    let mut d = extra_diag.map_or(0.0, |e| e[row0 + gx]);
                    if gx > 0 {
                        d += g_h;
                    }
                    if gx + 1 < width {
                        d += g_h;
                    }
                    if y > 0 {
                        d += g_v;
                    }
                    if y + 1 < height {
                        d += g_v;
                    }
                    diag.push(d);
                    if i + 1 < len {
                        lower.push(-g_h);
                        upper.push(-g_h);
                    }
                }
                let offset = factors.push_segment(&lower, &diag, &upper)?;
                segments.push(Segment {
                    row: y as u32,
                    start: start as u32,
                    len: len as u32,
                    offset: offset as u32,
                });
            }
        }

        let red_idx: Vec<u32> = (0..segments.len() as u32)
            .filter(|&i| segments[i as usize].row % 2 == 0)
            .collect();
        let black_idx: Vec<u32> = (0..segments.len() as u32)
            .filter(|&i| segments[i as usize].row % 2 == 1)
            .collect();
        let red_chunks = balance_chunks(&segments, &red_idx, threads);
        let black_chunks = balance_chunks(&segments, &black_idx, threads);

        let scratch_len = factors.max_segment_len();
        let scratches = (0..threads).map(|_| vec![0.0; scratch_len]).collect();
        let atomic_v = if threads > 1 {
            (0..n).map(|_| AtomicU64::new(0)).collect()
        } else {
            Vec::new()
        };
        let deltas = (0..threads).map(|_| AtomicU64::new(0)).collect();

        Ok(TierEngine {
            width,
            height,
            g_h,
            g_v,
            fixed,
            schedule,
            segments,
            red_idx,
            black_idx,
            red_chunks,
            black_chunks,
            factors,
            scratches,
            atomic_v,
            deltas,
        })
    }

    /// Builds an engine from a [`TierProblem`] (cloning its pin mask and
    /// extra diagonal).
    ///
    /// # Errors
    ///
    /// See [`TierEngine::new`].
    pub fn from_problem(
        problem: &TierProblem<'_>,
        schedule: SweepSchedule,
    ) -> Result<Self, SolverError> {
        TierEngine::new(
            problem.width,
            problem.height,
            problem.g_h,
            problem.g_v,
            Arc::from(problem.fixed),
            Some(problem.extra_diag),
            schedule,
        )
    }

    /// The schedule this engine sweeps with.
    pub fn schedule(&self) -> SweepSchedule {
        self.schedule
    }

    /// Sweeps until the largest per-sweep voltage update falls below
    /// `tolerance`, reading the initial guess (and pinned values) from `v`
    /// and leaving the solution there. Plain block Gauss–Seidel (ω = 1).
    ///
    /// # Errors
    ///
    /// [`SolverError::DidNotConverge`] if `max_sweeps` runs out.
    pub fn solve(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<SolveReport, SolverError> {
        self.solve_with_omega(injection, v, tolerance, max_sweeps, 1.0)
    }

    /// Like [`TierEngine::solve`] with an explicit SOR factor `ω ∈ (0, 2)`.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for an out-of-range `ω`;
    /// [`SolverError::DidNotConverge`] if `max_sweeps` runs out.
    pub fn solve_with_omega(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        self.check_call(injection, v, omega)?;
        if self.schedule.threads() > 1 {
            return self.solve_parallel(injection, v, tolerance, max_sweeps, omega);
        }
        let mut max_delta = f64::INFINITY;
        let mut sweeps = 0;
        while sweeps < max_sweeps {
            max_delta = match self.schedule {
                SweepSchedule::Sequential => {
                    self.sweep_sequential_slice(injection, v, sweeps % 2 == 0, omega)
                }
                SweepSchedule::RedBlack { .. } => self.sweep_redblack_slice(injection, v, omega),
            };
            sweeps += 1;
            if max_delta < tolerance {
                return Ok(SolveReport {
                    iterations: sweeps,
                    residual: max_delta,
                    converged: true,
                    workspace_bytes: self.memory_bytes(),
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations: sweeps,
            residual: max_delta,
            tolerance,
        })
    }

    /// One sweep under the engine's schedule (both colors for red-black),
    /// returning the largest voltage update. `downward` picks the row
    /// direction for the sequential schedule and is ignored by red-black.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent array lengths or an
    /// out-of-range `ω`.
    pub fn sweep_once(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        downward: bool,
        omega: f64,
    ) -> Result<f64, SolverError> {
        self.check_call(injection, v, omega)?;
        Ok(match self.schedule {
            SweepSchedule::Sequential => self.sweep_sequential_slice(injection, v, downward, omega),
            SweepSchedule::RedBlack { threads } if threads > 1 => {
                self.load_atomic(v);
                let delta = self
                    .parallel_sweeps(injection, f64::NEG_INFINITY, 1, omega)
                    .1;
                self.store_atomic(v);
                delta
            }
            SweepSchedule::RedBlack { .. } => self.sweep_redblack_slice(injection, v, omega),
        })
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.segments.len() * size_of::<Segment>()
            + (self.red_idx.len() + self.black_idx.len()) * size_of::<u32>()
            + self.factors.memory_bytes()
            + self
                .scratches
                .iter()
                .map(|s| s.capacity() * size_of::<f64>())
                .sum::<usize>()
            + (self.atomic_v.len() + self.deltas.len()) * size_of::<AtomicU64>()
            + self.fixed.len()
    }

    fn check_call(&self, injection: &[f64], v: &[f64], omega: f64) -> Result<(), SolverError> {
        let n = self.width * self.height;
        if injection.len() != n || v.len() != n {
            return Err(SolverError::Unsupported {
                what: format!(
                    "tier arrays must have {n} entries (injection {}, v {})",
                    injection.len(),
                    v.len()
                ),
            });
        }
        if !(omega > 0.0 && omega < 2.0) {
            return Err(SolverError::Unsupported {
                what: format!("SOR omega {omega} outside (0, 2)"),
            });
        }
        Ok(())
    }

    /// Row-ordered Gauss–Seidel over all segments (ascending rows when
    /// `downward`).
    fn sweep_sequential_slice(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        downward: bool,
        omega: f64,
    ) -> f64 {
        let scratch = &mut self.scratches[0];
        let nseg = self.segments.len();
        let mut max_delta = 0.0f64;
        let mut view = SliceView(v);
        for si in 0..nseg {
            let seg = if downward {
                self.segments[si]
            } else {
                self.segments[nseg - 1 - si]
            };
            let delta = solve_segment(
                seg,
                &self.factors,
                self.width,
                self.height,
                self.g_h,
                self.g_v,
                &self.fixed,
                injection,
                omega,
                scratch,
                &mut view,
            );
            max_delta = max_delta.max(delta);
        }
        max_delta
    }

    /// Red-black sweep on one thread (same iterates as the parallel path).
    fn sweep_redblack_slice(&mut self, injection: &[f64], v: &mut [f64], omega: f64) -> f64 {
        let scratch = &mut self.scratches[0];
        let mut max_delta = 0.0f64;
        let mut view = SliceView(v);
        for idx in [&self.red_idx, &self.black_idx] {
            for &si in idx.iter() {
                let delta = solve_segment(
                    self.segments[si as usize],
                    &self.factors,
                    self.width,
                    self.height,
                    self.g_h,
                    self.g_v,
                    &self.fixed,
                    injection,
                    omega,
                    scratch,
                    &mut view,
                );
                max_delta = max_delta.max(delta);
            }
        }
        max_delta
    }

    fn load_atomic(&self, v: &[f64]) {
        for (slot, &x) in self.atomic_v.iter().zip(v.iter()) {
            slot.store(x.to_bits(), Ordering::Relaxed);
        }
    }

    fn store_atomic(&self, v: &mut [f64]) {
        for (slot, x) in self.atomic_v.iter().zip(v.iter_mut()) {
            *x = f64::from_bits(slot.load(Ordering::Relaxed));
        }
    }

    /// Full multi-threaded solve: workers persist across sweeps (the
    /// thread spawns are paid once per solve, not once per sweep) and
    /// synchronize at phase barriers.
    fn solve_parallel(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        if max_sweeps == 0 {
            return Err(SolverError::DidNotConverge {
                iterations: 0,
                residual: f64::INFINITY,
                tolerance,
            });
        }
        self.load_atomic(v);
        let (sweeps, residual) = self.parallel_sweeps(injection, tolerance, max_sweeps, omega);
        self.store_atomic(v);
        if residual < tolerance {
            Ok(SolveReport {
                iterations: sweeps,
                residual,
                converged: true,
                workspace_bytes: self.memory_bytes(),
            })
        } else {
            Err(SolverError::DidNotConverge {
                iterations: sweeps,
                residual,
                tolerance,
            })
        }
    }

    /// Runs up to `max_sweeps` red-black sweeps on the atomic voltage
    /// image, stopping early once the sweep delta drops below
    /// `tolerance`. Returns `(sweeps run, last delta)`.
    fn parallel_sweeps(
        &mut self,
        injection: &[f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> (usize, f64) {
        let threads = self.schedule.threads();
        let barrier = Barrier::new(threads);
        let status = AtomicUsize::new(RUN);
        let sweeps_done = AtomicUsize::new(0);
        let final_delta = AtomicU64::new(f64::INFINITY.to_bits());
        let ctx = ParCtx {
            w: self.width,
            h: self.height,
            g_h: self.g_h,
            g_v: self.g_v,
            omega,
            tolerance,
            max_sweeps,
            threads,
            fixed: &self.fixed,
            injection,
            segments: &self.segments,
            red_idx: &self.red_idx,
            black_idx: &self.black_idx,
            red_chunks: &self.red_chunks,
            black_chunks: &self.black_chunks,
            factors: &self.factors,
            atomic_v: &self.atomic_v,
            deltas: &self.deltas,
            barrier: &barrier,
            status: &status,
            sweeps_done: &sweeps_done,
            final_delta: &final_delta,
        };
        std::thread::scope(|scope| {
            let mut scratch_iter = self.scratches.iter_mut();
            let main_scratch = scratch_iter.next().expect("thread-0 scratch");
            for (i, scratch) in scratch_iter.enumerate() {
                let ctx = &ctx;
                scope.spawn(move || solve_worker(ctx, i + 1, scratch));
            }
            solve_worker(&ctx, 0, main_scratch);
        });
        (
            sweeps_done.load(Ordering::Relaxed),
            f64::from_bits(final_delta.load(Ordering::Relaxed)),
        )
    }
}

/// Shared context of one parallel solve.
struct ParCtx<'a> {
    w: usize,
    h: usize,
    g_h: f64,
    g_v: f64,
    omega: f64,
    tolerance: f64,
    max_sweeps: usize,
    threads: usize,
    fixed: &'a [bool],
    injection: &'a [f64],
    segments: &'a [Segment],
    red_idx: &'a [u32],
    black_idx: &'a [u32],
    red_chunks: &'a [Range<usize>],
    black_chunks: &'a [Range<usize>],
    factors: &'a FactoredSegments,
    atomic_v: &'a [AtomicU64],
    deltas: &'a [AtomicU64],
    barrier: &'a Barrier,
    status: &'a AtomicUsize,
    sweeps_done: &'a AtomicUsize,
    final_delta: &'a AtomicU64,
}

/// The per-thread loop of a parallel solve. Thread 0 doubles as the
/// reducer that decides convergence between sweeps. Every sweep costs
/// three barrier waits: red→black, black→reduce, reduce→next sweep.
fn solve_worker(ctx: &ParCtx<'_>, tid: usize, scratch: &mut [f64]) {
    loop {
        let mut local = 0.0f64;
        for phase in 0..2 {
            let (idx, chunk) = if phase == 0 {
                (ctx.red_idx, &ctx.red_chunks[tid])
            } else {
                (ctx.black_idx, &ctx.black_chunks[tid])
            };
            let mut view = AtomicView(ctx.atomic_v);
            for &si in &idx[chunk.clone()] {
                local = local.max(solve_segment(
                    ctx.segments[si as usize],
                    ctx.factors,
                    ctx.w,
                    ctx.h,
                    ctx.g_h,
                    ctx.g_v,
                    ctx.fixed,
                    ctx.injection,
                    ctx.omega,
                    scratch,
                    &mut view,
                ));
            }
            // All writes of this color must land before any thread reads
            // them in the next phase.
            ctx.barrier.wait();
        }
        ctx.deltas[tid].store(local.to_bits(), Ordering::Relaxed);
        ctx.barrier.wait();
        if tid == 0 {
            let delta = ctx
                .deltas
                .iter()
                .take(ctx.threads)
                .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                .fold(0.0f64, f64::max);
            ctx.final_delta.store(delta.to_bits(), Ordering::Relaxed);
            let done = ctx.sweeps_done.fetch_add(1, Ordering::Relaxed) + 1;
            if delta < ctx.tolerance {
                ctx.status.store(DONE, Ordering::Relaxed);
            } else if done >= ctx.max_sweeps {
                ctx.status.store(BUDGET, Ordering::Relaxed);
            }
        }
        ctx.barrier.wait();
        if ctx.status.load(Ordering::Relaxed) != RUN {
            return;
        }
    }
}

/// Read/write access to the voltage image, monomorphized so the slice
/// (single-thread) and atomic (multi-thread) paths share one kernel.
trait VoltView {
    fn get(&self, i: usize) -> f64;
    fn set(&mut self, i: usize, value: f64);
}

struct SliceView<'a>(&'a mut [f64]);

impl VoltView for SliceView<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, value: f64) {
        self.0[i] = value;
    }
}

/// Atomic image view. Relaxed ordering suffices: phase barriers establish
/// the happens-before edges between writers of one color and readers of
/// the next phase, and within a phase no two threads touch the same node.
struct AtomicView<'a>(&'a [AtomicU64]);

impl VoltView for AtomicView<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.0[i].load(Ordering::Relaxed))
    }

    #[inline(always)]
    fn set(&mut self, i: usize, value: f64) {
        self.0[i].store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Solves one prefactored row segment exactly (given the current
/// neighbouring rows) and applies the (over-)relaxed update; returns the
/// largest update in the segment.
#[allow(clippy::too_many_arguments)]
#[inline]
fn solve_segment<V: VoltView>(
    seg: Segment,
    factors: &FactoredSegments,
    w: usize,
    h: usize,
    g_h: f64,
    g_v: f64,
    fixed: &[bool],
    injection: &[f64],
    omega: f64,
    scratch: &mut [f64],
    view: &mut V,
) -> f64 {
    let y = seg.row as usize;
    let start = seg.start as usize;
    let len = seg.len as usize;
    let row0 = y * w;
    let offset = seg.offset as usize;
    let mut max_delta = 0.0f64;
    // Forward pass: build each right-hand side entry from the frozen
    // neighbours and eliminate on the fly (no staging buffer).
    let mut prev = 0.0;
    for i in 0..len {
        let gx = start + i;
        let node = row0 + gx;
        let mut b = injection[node];
        if gx > 0 && fixed[node - 1] {
            b += g_h * view.get(node - 1);
        }
        if gx + 1 < w && fixed[node + 1] {
            b += g_h * view.get(node + 1);
        }
        if y > 0 {
            b += g_v * view.get(node - w);
        }
        if y + 1 < h {
            b += g_v * view.get(node + w);
        }
        let dp = factors.forward_step(offset + i, b, prev);
        scratch[i] = dp;
        prev = dp;
    }
    // Backward pass: substitute and apply the relaxed update in place.
    let mut next = 0.0;
    for i in (0..len).rev() {
        let xi = factors.backward_step(offset + i, scratch[i], next);
        let node = row0 + start + i;
        let old = view.get(node);
        let new = old + omega * (xi - old);
        let delta = (new - old).abs();
        if delta > max_delta {
            max_delta = delta;
        }
        view.set(node, new);
        next = xi;
    }
    max_delta
}

/// Splits `idx` into `threads` contiguous chunks with approximately equal
/// total node counts (rows can have very different free-node counts when
/// pins cluster).
fn balance_chunks(segments: &[Segment], idx: &[u32], threads: usize) -> Vec<Range<usize>> {
    let total: usize = idx.iter().map(|&i| segments[i as usize].len as usize).sum();
    let mut chunks = Vec::with_capacity(threads);
    let mut pos = 0usize;
    let mut acc = 0usize;
    for t in 0..threads {
        let begin = pos;
        if t + 1 == threads {
            pos = idx.len();
        } else {
            let target = total * (t + 1) / threads;
            while pos < idx.len() && acc < target {
                acc += segments[idx[pos] as usize].len as usize;
                pos += 1;
            }
        }
        chunks.push(begin..pos);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowbased::RowBased;

    fn random_problem(seed: u64, w: usize, h: usize) -> (Vec<bool>, Vec<f64>, Vec<f64>) {
        let n = w * h;
        let mut s = seed.wrapping_add(11);
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let mut fixed = vec![false; n];
        let mut v = vec![1.8; n];
        for i in 0..n {
            if rnd() < 0.25 {
                fixed[i] = true;
                v[i] = 1.7 + 0.2 * rnd();
            }
        }
        fixed[0] = true;
        let injection: Vec<f64> = (0..n)
            .map(|i| if fixed[i] { 0.0 } else { -1e-4 * rnd() })
            .collect();
        (fixed, v, injection)
    }

    fn engine(w: usize, h: usize, fixed: &[bool], schedule: SweepSchedule) -> TierEngine {
        TierEngine::new(w, h, 1.25, 0.8, Arc::from(fixed), None, schedule).unwrap()
    }

    #[test]
    fn sequential_engine_matches_generic_rowbased() {
        for seed in [1u64, 5, 23] {
            let (w, h) = (13, 9);
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v_engine = v0.clone();
            engine(w, h, &fixed, SweepSchedule::Sequential)
                .solve(&injection, &mut v_engine, 1e-11, 100_000)
                .unwrap();

            let mut v_ref = v0.clone();
            let problem = TierProblem {
                width: w,
                height: h,
                g_h: 1.25,
                g_v: 0.8,
                fixed: &fixed,
                extra_diag: &vec![0.0; w * h],
                injection: &injection,
            };
            RowBased {
                tolerance: 1e-11,
                ..Default::default()
            }
            .solve_tier(&problem, &mut v_ref)
            .unwrap();
            for i in 0..w * h {
                assert!(
                    (v_engine[i] - v_ref[i]).abs() < 1e-8,
                    "seed {seed} node {i}: engine {} vs rowbased {}",
                    v_engine[i],
                    v_ref[i]
                );
            }
        }
    }

    #[test]
    fn redblack_is_thread_count_invariant() {
        for seed in [2u64, 7] {
            let (w, h) = (17, 12);
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v1 = v0.clone();
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
                .solve(&injection, &mut v1, 1e-10, 100_000)
                .unwrap();
            for threads in [2usize, 4] {
                let mut vt = v0.clone();
                engine(w, h, &fixed, SweepSchedule::RedBlack { threads })
                    .solve(&injection, &mut vt, 1e-10, 100_000)
                    .unwrap();
                assert_eq!(
                    v1, vt,
                    "seed {seed}, {threads} threads must be bitwise equal"
                );
            }
        }
    }

    #[test]
    fn redblack_agrees_with_sequential_solution() {
        let (w, h) = (20, 15);
        let (fixed, v0, injection) = random_problem(3, w, h);
        let mut v_seq = v0.clone();
        engine(w, h, &fixed, SweepSchedule::Sequential)
            .solve(&injection, &mut v_seq, 1e-12, 200_000)
            .unwrap();
        let mut v_rb = v0.clone();
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 3 })
            .solve(&injection, &mut v_rb, 1e-12, 200_000)
            .unwrap();
        let worst = v_seq
            .iter()
            .zip(&v_rb)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= 1e-9, "schedules disagree by {worst} V");
    }

    #[test]
    fn sweep_once_parallel_matches_single_thread() {
        let (w, h) = (11, 8);
        let (fixed, v0, injection) = random_problem(9, w, h);
        let mut v1 = v0.clone();
        let mut e1 = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 });
        let d1 = e1.sweep_once(&injection, &mut v1, true, 1.0).unwrap();
        let mut v4 = v0.clone();
        let mut e4 = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 4 });
        let d4 = e4.sweep_once(&injection, &mut v4, true, 1.0).unwrap();
        assert_eq!(v1, v4);
        assert_eq!(d1, d4);
    }

    #[test]
    fn budget_exhaustion_is_error_on_both_paths() {
        let (w, h) = (16, 16);
        let mut fixed = vec![false; w * h];
        fixed[0] = true;
        let injection = vec![0.0; w * h];
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 2 },
        ] {
            let mut v = vec![0.0; w * h];
            v[0] = 1.8;
            let err = TierEngine::new(w, h, 1.0, 1.0, Arc::from(&fixed[..]), None, schedule)
                .unwrap()
                .solve(&injection, &mut v, 1e-15, 2)
                .unwrap_err();
            assert!(
                matches!(err, SolverError::DidNotConverge { iterations: 2, .. }),
                "{schedule:?}: {err:?}"
            );
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let fixed: Arc<[bool]> = Arc::from(vec![false; 4]);
        assert!(TierEngine::new(
            3,
            2,
            1.0,
            1.0,
            fixed.clone(),
            None,
            SweepSchedule::Sequential
        )
        .is_err());
        let fixed6: Arc<[bool]> = Arc::from(vec![false; 6]);
        assert!(TierEngine::new(
            3,
            2,
            -1.0,
            1.0,
            fixed6.clone(),
            None,
            SweepSchedule::Sequential
        )
        .is_err());
        let mut ok =
            TierEngine::new(3, 2, 1.0, 1.0, fixed6, None, SweepSchedule::Sequential).unwrap();
        let mut v = vec![0.0; 6];
        assert!(ok.solve(&[0.0; 5], &mut v, 1e-6, 10).is_err());
        assert!(ok
            .solve_with_omega(&[0.0; 6], &mut v, 1e-6, 10, 2.5)
            .is_err());
    }

    #[test]
    fn parallelism_maps_to_schedule() {
        assert_eq!(
            SweepSchedule::from_parallelism(0),
            SweepSchedule::Sequential
        );
        assert_eq!(
            SweepSchedule::from_parallelism(1),
            SweepSchedule::Sequential
        );
        assert_eq!(
            SweepSchedule::from_parallelism(4),
            SweepSchedule::RedBlack { threads: 4 }
        );
        assert_eq!(SweepSchedule::RedBlack { threads: 0 }.threads(), 1);
    }

    #[test]
    fn chunks_cover_all_segments_without_overlap() {
        let (w, h) = (31, 23);
        let (fixed, _, _) = random_problem(4, w, h);
        let e = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 5 });
        for (idx, chunks) in [(&e.red_idx, &e.red_chunks), (&e.black_idx, &e.black_chunks)] {
            assert_eq!(chunks.len(), 5);
            let mut covered = 0usize;
            let mut expect_begin = 0usize;
            for c in chunks.iter() {
                assert_eq!(c.start, expect_begin, "chunks must be contiguous");
                expect_begin = c.end;
                covered += c.len();
            }
            assert_eq!(covered, idx.len());
            assert_eq!(expect_begin, idx.len());
        }
    }
}
