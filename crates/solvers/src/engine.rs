//! The prefactored row-sweep engine with red-black parallel scheduling.
//!
//! Row-based iteration treats each grid row as one block of a block
//! Gauss–Seidel iteration; pinned nodes cut a row into independent
//! tridiagonal segments. Two facts make the inner kernel fast:
//!
//! 1. **The segment matrices never change.** Across sweeps, outer
//!    iterations, and colors, only the right-hand sides move. The engine
//!    factors every segment once at construction into a shared
//!    [`FactoredSegments`] arena, so a sweep is pure forward/backward
//!    substitution (`3N` multiplies per row instead of the `5N-4` the
//!    paper quotes for a from-scratch Thomas pass) and never allocates.
//! 2. **Rows of one parity are independent.** A row couples only to the
//!    rows directly above and below it, so under a *red-black* coloring
//!    (even rows red, odd rows black) every red row can be solved
//!    simultaneously while the black rows are frozen, and vice versa.
//!    The [`SweepSchedule::RedBlack`] schedule exploits this to run row
//!    solves across OS threads; voltages live in an atomic buffer during
//!    the parallel solve, and barriers separate the two color phases.
//!
//! The red-black result is **deterministic in the thread count**: each
//! phase reads only other-color (frozen) and pinned values, so the update
//! of a row is independent of the order rows of its own color are
//! processed. `RedBlack { threads: 1 }` and `RedBlack { threads: 8 }`
//! produce bitwise-identical iterates; both converge to the same fixed
//! point as [`SweepSchedule::Sequential`] (the classic alternating
//! row-order sweep), which remains the default and the `parallelism = 1`
//! special case throughout the workspace.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use crate::rowbased::TierProblem;
use crate::{LaneReport, SolveReport, SolverError};
use voltprop_sparse::tridiag::FactoredSegments;

/// How a [`TierEngine`] orders its row solves within one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepSchedule {
    /// Row-ordered block Gauss–Seidel, alternating sweep direction — the
    /// paper's schedule and the strongest smoother per sweep.
    Sequential,
    /// Red-black row coloring: even rows update first (reading frozen odd
    /// rows), then odd rows. Rows within a color are solved concurrently
    /// on `threads` OS threads; results are identical for every
    /// `threads >= 1`.
    RedBlack {
        /// Worker threads for each color phase (clamped to at least 1).
        threads: usize,
    },
}

impl SweepSchedule {
    /// The schedule a `parallelism` knob maps to: `<= 1` stays on the
    /// sequential path, anything larger sweeps red-black on that many
    /// threads.
    pub fn from_parallelism(parallelism: usize) -> Self {
        if parallelism <= 1 {
            SweepSchedule::Sequential
        } else {
            SweepSchedule::RedBlack {
                threads: parallelism,
            }
        }
    }

    /// Number of worker threads this schedule uses.
    pub fn threads(&self) -> usize {
        match self {
            SweepSchedule::Sequential => 1,
            SweepSchedule::RedBlack { threads } => (*threads).max(1),
        }
    }
}

/// One tridiagonal row segment between pinned nodes.
#[derive(Debug, Clone, Copy)]
struct Segment {
    row: u32,
    start: u32,
    len: u32,
    /// Offset of this segment's coefficients in the factor arena.
    offset: u32,
}

/// Worker status codes for the persistent parallel solve loop.
const RUN: usize = 0;
const DONE: usize = 1;
const BUDGET: usize = 2;

/// Lazily sized state for batched (multi right-hand-side) solves.
///
/// Sized on the first [`TierEngine::solve_batch`] call for a given lane
/// count; later calls with the same count reuse every buffer, so warm
/// batched solves stay allocation-free on the single-threaded schedules.
#[derive(Debug, Default)]
struct BatchState {
    /// Lane count the buffers below are sized for (0 = never sized).
    lanes: usize,
    /// Per-thread substitution scratch, `max_segment_len * lanes` each.
    scratches: Vec<Vec<f64>>,
    /// Per-thread copy of the lane-active flags (refreshed every sweep).
    thread_active: Vec<Vec<bool>>,
    /// Per-thread per-lane max-|update| accumulators.
    thread_delta: Vec<Vec<f64>>,
    /// Atomic voltage image (`n * lanes`) for the parallel path.
    atomic_v: Vec<AtomicU64>,
    /// `threads × lanes` delta slots for the parallel reduction.
    deltas: Vec<AtomicU64>,
    /// Shared lane-active flags for the parallel path.
    active: Vec<AtomicBool>,
}

impl BatchState {
    fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let vecs = |vs: &[Vec<f64>]| {
            vs.iter()
                .map(|v| v.capacity() * size_of::<f64>())
                .sum::<usize>()
        };
        vecs(&self.scratches)
            + vecs(&self.thread_delta)
            + self.thread_active.iter().map(Vec::capacity).sum::<usize>()
            + (self.atomic_v.len() + self.deltas.len()) * size_of::<AtomicU64>()
            + self.active.len() * size_of::<AtomicBool>()
    }
}

/// A tier's prefactored row-sweep engine.
///
/// Built once per tier, reused across every sweep and outer iteration:
/// after construction the single-threaded schedules perform **no heap
/// allocation** on any solve or sweep path. The multi-threaded red-black
/// path additionally pays one scoped thread-pool spawn (a handful of
/// small allocations plus spawn latency) per [`TierEngine::solve`] call
/// — and per [`TierEngine::sweep_once`] call, so prefer whole solves
/// over per-sweep calls when sweeping in parallel.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use voltprop_solvers::{SweepSchedule, TierEngine};
///
/// # fn main() -> Result<(), voltprop_solvers::SolverError> {
/// let (w, h) = (8, 8);
/// let mut fixed = vec![false; w * h];
/// fixed[0] = true; // one pinned corner
/// let mut engine = TierEngine::new(
///     w, h, 1.0, 1.0, Arc::from(fixed), None,
///     SweepSchedule::RedBlack { threads: 2 },
/// )?;
/// let mut v = vec![0.0; w * h];
/// v[0] = 1.8;
/// let injection = vec![0.0; w * h];
/// let report = engine.solve(&injection, &mut v, 1e-9, 100_000)?;
/// assert!(report.converged);
/// assert!(v.iter().all(|&vi| (vi - 1.8).abs() < 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TierEngine {
    width: usize,
    height: usize,
    g_h: f64,
    g_v: f64,
    fixed: Arc<[bool]>,
    schedule: SweepSchedule,
    /// All segments in natural (row-major) order.
    segments: Vec<Segment>,
    /// Indices into `segments` for even (red) and odd (black) rows.
    red_idx: Vec<u32>,
    black_idx: Vec<u32>,
    /// Per-thread index ranges into `red_idx` / `black_idx`, balanced by
    /// node count.
    red_chunks: Vec<Range<usize>>,
    black_chunks: Vec<Range<usize>>,
    factors: FactoredSegments,
    /// Per-thread forward-substitution scratch.
    scratches: Vec<Vec<f64>>,
    /// Atomic voltage image used by multi-threaded sweeps (empty when the
    /// schedule runs on one thread).
    atomic_v: Vec<AtomicU64>,
    /// Per-thread max-|update| slots for the parallel reduction.
    deltas: Vec<AtomicU64>,
    /// Lazily sized multi-right-hand-side solve state.
    batch: BatchState,
}

impl TierEngine {
    /// Factors a tier's row segments. `fixed` pins nodes (row-major mask),
    /// `extra_diag` adds optional per-node diagonal conductance (TSV or
    /// pad coupling to external potentials).
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent dimensions or
    /// non-positive conductances; [`SolverError::Sparse`] if a segment is
    /// singular (a free node with no neighbours and no extra diagonal).
    pub fn new(
        width: usize,
        height: usize,
        g_h: f64,
        g_v: f64,
        fixed: Arc<[bool]>,
        extra_diag: Option<&[f64]>,
        schedule: SweepSchedule,
    ) -> Result<Self, SolverError> {
        let n = width * height;
        if fixed.len() != n {
            return Err(SolverError::Unsupported {
                what: format!("pin mask must have {n} entries (got {})", fixed.len()),
            });
        }
        if let Some(e) = extra_diag {
            if e.len() != n {
                return Err(SolverError::Unsupported {
                    what: format!("extra_diag must have {n} entries (got {})", e.len()),
                });
            }
        }
        if !(g_h > 0.0 && g_v > 0.0) {
            return Err(SolverError::Unsupported {
                what: "conductances must be positive".into(),
            });
        }
        let threads = schedule.threads();

        let mut segments = Vec::new();
        let mut factors = FactoredSegments::new();
        // Segment-local coefficient buffers (setup only).
        let mut lower = Vec::new();
        let mut diag = Vec::new();
        let mut upper = Vec::new();
        for y in 0..height {
            let row0 = y * width;
            let mut x = 0usize;
            while x < width {
                if fixed[row0 + x] {
                    x += 1;
                    continue;
                }
                let start = x;
                while x < width && !fixed[row0 + x] {
                    x += 1;
                }
                let len = x - start;
                lower.clear();
                diag.clear();
                upper.clear();
                for i in 0..len {
                    let gx = start + i;
                    let mut d = extra_diag.map_or(0.0, |e| e[row0 + gx]);
                    if gx > 0 {
                        d += g_h;
                    }
                    if gx + 1 < width {
                        d += g_h;
                    }
                    if y > 0 {
                        d += g_v;
                    }
                    if y + 1 < height {
                        d += g_v;
                    }
                    diag.push(d);
                    if i + 1 < len {
                        lower.push(-g_h);
                        upper.push(-g_h);
                    }
                }
                let offset = factors.push_segment(&lower, &diag, &upper)?;
                segments.push(Segment {
                    row: y as u32,
                    start: start as u32,
                    len: len as u32,
                    offset: offset as u32,
                });
            }
        }

        let red_idx: Vec<u32> = (0..segments.len() as u32)
            .filter(|&i| segments[i as usize].row % 2 == 0)
            .collect();
        let black_idx: Vec<u32> = (0..segments.len() as u32)
            .filter(|&i| segments[i as usize].row % 2 == 1)
            .collect();
        let red_chunks = balance_chunks(&segments, &red_idx, threads);
        let black_chunks = balance_chunks(&segments, &black_idx, threads);

        let scratch_len = factors.max_segment_len();
        let scratches = (0..threads).map(|_| vec![0.0; scratch_len]).collect();
        let atomic_v = if threads > 1 {
            (0..n).map(|_| AtomicU64::new(0)).collect()
        } else {
            Vec::new()
        };
        let deltas = (0..threads).map(|_| AtomicU64::new(0)).collect();

        Ok(TierEngine {
            width,
            height,
            g_h,
            g_v,
            fixed,
            schedule,
            segments,
            red_idx,
            black_idx,
            red_chunks,
            black_chunks,
            factors,
            scratches,
            atomic_v,
            deltas,
            batch: BatchState::default(),
        })
    }

    /// Builds an engine from a [`TierProblem`] (cloning its pin mask and
    /// extra diagonal).
    ///
    /// # Errors
    ///
    /// See [`TierEngine::new`].
    pub fn from_problem(
        problem: &TierProblem<'_>,
        schedule: SweepSchedule,
    ) -> Result<Self, SolverError> {
        TierEngine::new(
            problem.width,
            problem.height,
            problem.g_h,
            problem.g_v,
            Arc::from(problem.fixed),
            Some(problem.extra_diag),
            schedule,
        )
    }

    /// The schedule this engine sweeps with.
    pub fn schedule(&self) -> SweepSchedule {
        self.schedule
    }

    /// Sweeps until the largest per-sweep voltage update falls below
    /// `tolerance`, reading the initial guess (and pinned values) from `v`
    /// and leaving the solution there. Plain block Gauss–Seidel (ω = 1).
    ///
    /// # Errors
    ///
    /// [`SolverError::DidNotConverge`] if `max_sweeps` runs out.
    pub fn solve(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
    ) -> Result<SolveReport, SolverError> {
        self.solve_with_omega(injection, v, tolerance, max_sweeps, 1.0)
    }

    /// Like [`TierEngine::solve`] with an explicit SOR factor `ω ∈ (0, 2)`.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for an out-of-range `ω`;
    /// [`SolverError::DidNotConverge`] if `max_sweeps` runs out.
    pub fn solve_with_omega(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        self.check_call(injection, v, omega)?;
        if self.schedule.threads() > 1 {
            return self.solve_parallel(injection, v, tolerance, max_sweeps, omega);
        }
        let mut max_delta = f64::INFINITY;
        let mut sweeps = 0;
        while sweeps < max_sweeps {
            max_delta = match self.schedule {
                SweepSchedule::Sequential => {
                    self.sweep_sequential_slice(injection, v, sweeps % 2 == 0, omega)
                }
                SweepSchedule::RedBlack { .. } => self.sweep_redblack_slice(injection, v, omega),
            };
            sweeps += 1;
            if max_delta < tolerance {
                return Ok(SolveReport {
                    iterations: sweeps,
                    residual: max_delta,
                    converged: true,
                    workspace_bytes: self.memory_bytes(),
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations: sweeps,
            residual: max_delta,
            tolerance,
        })
    }

    /// One sweep under the engine's schedule (both colors for red-black),
    /// returning the largest voltage update. `downward` picks the row
    /// direction for the sequential schedule and is ignored by red-black.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent array lengths or an
    /// out-of-range `ω`.
    pub fn sweep_once(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        downward: bool,
        omega: f64,
    ) -> Result<f64, SolverError> {
        self.check_call(injection, v, omega)?;
        Ok(match self.schedule {
            SweepSchedule::Sequential => self.sweep_sequential_slice(injection, v, downward, omega),
            SweepSchedule::RedBlack { threads } if threads > 1 => {
                self.load_atomic(v);
                let delta = self
                    .parallel_sweeps(injection, f64::NEG_INFINITY, 1, omega)
                    .1;
                self.store_atomic(v);
                delta
            }
            SweepSchedule::RedBlack { .. } => self.sweep_redblack_slice(injection, v, omega),
        })
    }

    /// Solves `lanes.len()` right-hand sides together through the shared
    /// prefactored segments (plain block Gauss–Seidel, ω = 1). See
    /// [`TierEngine::solve_batch_masked`] for the memory layout and
    /// semantics.
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for inconsistent array lengths or an
    /// empty batch. Non-convergence is **not** an error on the batched
    /// path: each lane's [`LaneReport`] carries its own outcome.
    pub fn solve_batch(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        self.solve_batch_masked(injection, v, tolerance, max_sweeps, 1.0, None, lanes)
    }

    /// Like [`TierEngine::solve_batch`] with an explicit SOR factor
    /// `ω ∈ (0, 2)`.
    ///
    /// # Errors
    ///
    /// See [`TierEngine::solve_batch_masked`].
    pub fn solve_batch_with_omega(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        self.solve_batch_masked(injection, v, tolerance, max_sweeps, omega, None, lanes)
    }

    /// The general batched solve: `k = lanes.len()` right-hand sides sweep
    /// together against the shared factors, each lane converging (and
    /// freezing) independently.
    ///
    /// # Memory layout
    ///
    /// `injection` and `v` hold all lanes **node-major, lane-minor**: the
    /// value of lane `j` at flat node `i` lives at index `i * k + j`. All
    /// lanes of one node are contiguous, so the inner substitution loops
    /// run unit-stride over the lanes while every factor coefficient,
    /// neighbour offset, and pin-mask bit is loaded once per row instead
    /// of once per lane — this is where the batched throughput comes from.
    ///
    /// # Per-lane convergence
    ///
    /// After every sweep each lane's own largest update is compared with
    /// `tolerance`; a lane that passes is *frozen* (its voltages stop
    /// changing, its sweep count and residual are recorded) while the
    /// rest keep sweeping. A frozen lane's iterate is therefore **bitwise
    /// identical** to what a standalone [`TierEngine::solve`] on that
    /// right-hand side would produce, on every schedule and thread count.
    /// `mask` (when present) marks lanes to leave untouched from the
    /// start: their voltages are never read or written and their reports
    /// come back as converged in 0 sweeps.
    ///
    /// Lanes that exhaust `max_sweeps` report `converged = false` with
    /// their true residual; the call still returns `Ok` (the aggregate
    /// report's `converged` is the AND over the active lanes).
    ///
    /// # Errors
    ///
    /// [`SolverError::Unsupported`] for an empty batch, inconsistent
    /// array lengths, a bad mask length, or an out-of-range `ω`.
    #[allow(clippy::too_many_arguments)] // the full batched-solve surface
    pub fn solve_batch_masked(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        mask: Option<&[bool]>,
        lanes: &mut [LaneReport],
    ) -> Result<SolveReport, SolverError> {
        let k = lanes.len();
        let n = self.width * self.height;
        if k == 0 {
            return Err(SolverError::Unsupported {
                what: "batched solve needs at least one lane".into(),
            });
        }
        if injection.len() != n * k || v.len() != n * k {
            return Err(SolverError::Unsupported {
                what: format!(
                    "batch arrays must have {n} × {k} entries (injection {}, v {})",
                    injection.len(),
                    v.len()
                ),
            });
        }
        if let Some(m) = mask {
            if m.len() != k {
                return Err(SolverError::Unsupported {
                    what: format!("lane mask must have {k} entries (got {})", m.len()),
                });
            }
        }
        if !(omega > 0.0 && omega < 2.0) {
            return Err(SolverError::Unsupported {
                what: format!("SOR omega {omega} outside (0, 2)"),
            });
        }
        self.ensure_batch(k);
        for (j, lane) in lanes.iter_mut().enumerate() {
            let on = mask.is_none_or(|m| m[j]);
            *lane = LaneReport {
                iterations: 0,
                residual: if on { f64::INFINITY } else { 0.0 },
                converged: !on,
            };
        }
        let threads = self.schedule.threads();
        if threads > 1 {
            return Ok(self.solve_batch_parallel(injection, v, tolerance, max_sweeps, omega, lanes));
        }

        // Single-threaded schedules: sweep in place on `v`.
        let active = &mut self.batch.thread_active[0];
        for (a, lane) in active.iter_mut().zip(lanes.iter()) {
            *a = !lane.converged;
        }
        let mut n_active = active.iter().filter(|&&a| a).count();
        let scratch = &mut self.batch.scratches[0];
        let delta = &mut self.batch.thread_delta[0];
        let mut view = SliceView(v);
        let mut sweeps = 0;
        while sweeps < max_sweeps && n_active > 0 {
            delta.fill(0.0);
            match self.schedule {
                SweepSchedule::Sequential => {
                    let nseg = self.segments.len();
                    let downward = sweeps % 2 == 0;
                    for s in 0..nseg {
                        let si = if downward { s } else { nseg - 1 - s };
                        solve_segment_batch(
                            self.segments[si],
                            &self.factors,
                            self.width,
                            self.height,
                            self.g_h,
                            self.g_v,
                            &self.fixed,
                            injection,
                            omega,
                            k,
                            active,
                            scratch,
                            &mut view,
                            delta,
                        );
                    }
                }
                SweepSchedule::RedBlack { .. } => {
                    for idx in [&self.red_idx, &self.black_idx] {
                        for &si in idx.iter() {
                            solve_segment_batch(
                                self.segments[si as usize],
                                &self.factors,
                                self.width,
                                self.height,
                                self.g_h,
                                self.g_v,
                                &self.fixed,
                                injection,
                                omega,
                                k,
                                active,
                                scratch,
                                &mut view,
                                delta,
                            );
                        }
                    }
                }
            }
            sweeps += 1;
            for j in 0..k {
                if !active[j] {
                    continue;
                }
                lanes[j].iterations = sweeps;
                lanes[j].residual = delta[j];
                if delta[j] < tolerance {
                    lanes[j].converged = true;
                    active[j] = false;
                    n_active -= 1;
                }
            }
        }
        Ok(aggregate_report(lanes, sweeps, self.memory_bytes()))
    }

    /// Sizes the batch buffers for `k` lanes (no-op when already sized).
    fn ensure_batch(&mut self, k: usize) {
        if self.batch.lanes == k {
            return;
        }
        let threads = self.schedule.threads();
        let n = self.width * self.height;
        let seg_len = self.factors.max_segment_len();
        let b = &mut self.batch;
        b.lanes = k;
        b.scratches = (0..threads).map(|_| vec![0.0; seg_len * k]).collect();
        b.thread_active = (0..threads).map(|_| vec![true; k]).collect();
        b.thread_delta = (0..threads).map(|_| vec![0.0; k]).collect();
        if threads > 1 {
            b.atomic_v = (0..n * k).map(|_| AtomicU64::new(0)).collect();
            b.deltas = (0..threads * k).map(|_| AtomicU64::new(0)).collect();
            b.active = (0..k).map(|_| AtomicBool::new(true)).collect();
        }
    }

    /// Multi-threaded batched red-black solve: the worker structure of
    /// [`TierEngine::solve_parallel`] with per-lane deltas and centrally
    /// decided per-lane freezing (thread 0 is the reducer, so freezing —
    /// and therefore every iterate — is deterministic in the thread
    /// count).
    fn solve_batch_parallel(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
        lanes: &mut [LaneReport],
    ) -> SolveReport {
        let k = lanes.len();
        let threads = self.schedule.threads();
        let BatchState {
            scratches,
            thread_active,
            thread_delta,
            atomic_v,
            deltas,
            active,
            ..
        } = &mut self.batch;
        for (slot, &x) in atomic_v.iter().zip(v.iter()) {
            slot.store(x.to_bits(), Ordering::Relaxed);
        }
        for (slot, lane) in active.iter().zip(lanes.iter()) {
            slot.store(!lane.converged, Ordering::Relaxed);
        }
        let mut sweeps = 0usize;
        let any_active = lanes.iter().any(|l| !l.converged);
        if any_active && max_sweeps > 0 {
            let barrier = Barrier::new(threads);
            let status = AtomicUsize::new(RUN);
            let ctx = BatchCtx {
                w: self.width,
                h: self.height,
                g_h: self.g_h,
                g_v: self.g_v,
                omega,
                tolerance,
                max_sweeps,
                threads,
                lanes: k,
                fixed: &self.fixed,
                injection,
                segments: &self.segments,
                red_idx: &self.red_idx,
                black_idx: &self.black_idx,
                red_chunks: &self.red_chunks,
                black_chunks: &self.black_chunks,
                factors: &self.factors,
                atomic_v,
                deltas,
                active,
                barrier: &barrier,
                status: &status,
            };
            // Scoped workers: thread 0 (the caller) doubles as the reducer
            // and is the only one that touches `lanes`.
            std::thread::scope(|scope| {
                let mut scratch_iter = scratches.iter_mut();
                let mut active_iter = thread_active.iter_mut();
                let mut delta_iter = thread_delta.iter_mut();
                let main_scratch = scratch_iter.next().expect("thread-0 scratch");
                let main_active = active_iter.next().expect("thread-0 active");
                let main_delta = delta_iter.next().expect("thread-0 delta");
                for (i, ((scratch, local_active), local_delta)) in
                    scratch_iter.zip(active_iter).zip(delta_iter).enumerate()
                {
                    let ctx = &ctx;
                    scope.spawn(move || {
                        batch_worker(ctx, i + 1, scratch, local_active, local_delta, None)
                    });
                }
                batch_worker(
                    &ctx,
                    0,
                    main_scratch,
                    main_active,
                    main_delta,
                    Some(BatchLead {
                        lanes,
                        sweeps: &mut sweeps,
                    }),
                );
            });
        }
        for (slot, x) in atomic_v.iter().zip(v.iter_mut()) {
            *x = f64::from_bits(slot.load(Ordering::Relaxed));
        }
        aggregate_report(lanes, sweeps, self.memory_bytes())
    }

    /// Estimated heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.segments.len() * size_of::<Segment>()
            + (self.red_idx.len() + self.black_idx.len()) * size_of::<u32>()
            + self.factors.memory_bytes()
            + self
                .scratches
                .iter()
                .map(|s| s.capacity() * size_of::<f64>())
                .sum::<usize>()
            + (self.atomic_v.len() + self.deltas.len()) * size_of::<AtomicU64>()
            + self.fixed.len()
            + self.batch.memory_bytes()
    }

    fn check_call(&self, injection: &[f64], v: &[f64], omega: f64) -> Result<(), SolverError> {
        let n = self.width * self.height;
        if injection.len() != n || v.len() != n {
            return Err(SolverError::Unsupported {
                what: format!(
                    "tier arrays must have {n} entries (injection {}, v {})",
                    injection.len(),
                    v.len()
                ),
            });
        }
        if !(omega > 0.0 && omega < 2.0) {
            return Err(SolverError::Unsupported {
                what: format!("SOR omega {omega} outside (0, 2)"),
            });
        }
        Ok(())
    }

    /// Row-ordered Gauss–Seidel over all segments (ascending rows when
    /// `downward`).
    fn sweep_sequential_slice(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        downward: bool,
        omega: f64,
    ) -> f64 {
        let scratch = &mut self.scratches[0];
        let nseg = self.segments.len();
        let mut max_delta = 0.0f64;
        let mut view = SliceView(v);
        for si in 0..nseg {
            let seg = if downward {
                self.segments[si]
            } else {
                self.segments[nseg - 1 - si]
            };
            let delta = solve_segment(
                seg,
                &self.factors,
                self.width,
                self.height,
                self.g_h,
                self.g_v,
                &self.fixed,
                injection,
                omega,
                scratch,
                &mut view,
            );
            max_delta = max_delta.max(delta);
        }
        max_delta
    }

    /// Red-black sweep on one thread (same iterates as the parallel path).
    fn sweep_redblack_slice(&mut self, injection: &[f64], v: &mut [f64], omega: f64) -> f64 {
        let scratch = &mut self.scratches[0];
        let mut max_delta = 0.0f64;
        let mut view = SliceView(v);
        for idx in [&self.red_idx, &self.black_idx] {
            for &si in idx.iter() {
                let delta = solve_segment(
                    self.segments[si as usize],
                    &self.factors,
                    self.width,
                    self.height,
                    self.g_h,
                    self.g_v,
                    &self.fixed,
                    injection,
                    omega,
                    scratch,
                    &mut view,
                );
                max_delta = max_delta.max(delta);
            }
        }
        max_delta
    }

    fn load_atomic(&self, v: &[f64]) {
        for (slot, &x) in self.atomic_v.iter().zip(v.iter()) {
            slot.store(x.to_bits(), Ordering::Relaxed);
        }
    }

    fn store_atomic(&self, v: &mut [f64]) {
        for (slot, x) in self.atomic_v.iter().zip(v.iter_mut()) {
            *x = f64::from_bits(slot.load(Ordering::Relaxed));
        }
    }

    /// Full multi-threaded solve: workers persist across sweeps (the
    /// thread spawns are paid once per solve, not once per sweep) and
    /// synchronize at phase barriers.
    fn solve_parallel(
        &mut self,
        injection: &[f64],
        v: &mut [f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> Result<SolveReport, SolverError> {
        if max_sweeps == 0 {
            return Err(SolverError::DidNotConverge {
                iterations: 0,
                residual: f64::INFINITY,
                tolerance,
            });
        }
        self.load_atomic(v);
        let (sweeps, residual) = self.parallel_sweeps(injection, tolerance, max_sweeps, omega);
        self.store_atomic(v);
        if residual < tolerance {
            Ok(SolveReport {
                iterations: sweeps,
                residual,
                converged: true,
                workspace_bytes: self.memory_bytes(),
            })
        } else {
            Err(SolverError::DidNotConverge {
                iterations: sweeps,
                residual,
                tolerance,
            })
        }
    }

    /// Runs up to `max_sweeps` red-black sweeps on the atomic voltage
    /// image, stopping early once the sweep delta drops below
    /// `tolerance`. Returns `(sweeps run, last delta)`.
    fn parallel_sweeps(
        &mut self,
        injection: &[f64],
        tolerance: f64,
        max_sweeps: usize,
        omega: f64,
    ) -> (usize, f64) {
        let threads = self.schedule.threads();
        let barrier = Barrier::new(threads);
        let status = AtomicUsize::new(RUN);
        let sweeps_done = AtomicUsize::new(0);
        let final_delta = AtomicU64::new(f64::INFINITY.to_bits());
        let ctx = ParCtx {
            w: self.width,
            h: self.height,
            g_h: self.g_h,
            g_v: self.g_v,
            omega,
            tolerance,
            max_sweeps,
            threads,
            fixed: &self.fixed,
            injection,
            segments: &self.segments,
            red_idx: &self.red_idx,
            black_idx: &self.black_idx,
            red_chunks: &self.red_chunks,
            black_chunks: &self.black_chunks,
            factors: &self.factors,
            atomic_v: &self.atomic_v,
            deltas: &self.deltas,
            barrier: &barrier,
            status: &status,
            sweeps_done: &sweeps_done,
            final_delta: &final_delta,
        };
        std::thread::scope(|scope| {
            let mut scratch_iter = self.scratches.iter_mut();
            let main_scratch = scratch_iter.next().expect("thread-0 scratch");
            for (i, scratch) in scratch_iter.enumerate() {
                let ctx = &ctx;
                scope.spawn(move || solve_worker(ctx, i + 1, scratch));
            }
            solve_worker(&ctx, 0, main_scratch);
        });
        (
            sweeps_done.load(Ordering::Relaxed),
            f64::from_bits(final_delta.load(Ordering::Relaxed)),
        )
    }
}

/// Shared context of one parallel solve.
struct ParCtx<'a> {
    w: usize,
    h: usize,
    g_h: f64,
    g_v: f64,
    omega: f64,
    tolerance: f64,
    max_sweeps: usize,
    threads: usize,
    fixed: &'a [bool],
    injection: &'a [f64],
    segments: &'a [Segment],
    red_idx: &'a [u32],
    black_idx: &'a [u32],
    red_chunks: &'a [Range<usize>],
    black_chunks: &'a [Range<usize>],
    factors: &'a FactoredSegments,
    atomic_v: &'a [AtomicU64],
    deltas: &'a [AtomicU64],
    barrier: &'a Barrier,
    status: &'a AtomicUsize,
    sweeps_done: &'a AtomicUsize,
    final_delta: &'a AtomicU64,
}

/// The per-thread loop of a parallel solve. Thread 0 doubles as the
/// reducer that decides convergence between sweeps. Every sweep costs
/// three barrier waits: red→black, black→reduce, reduce→next sweep.
fn solve_worker(ctx: &ParCtx<'_>, tid: usize, scratch: &mut [f64]) {
    loop {
        let mut local = 0.0f64;
        for phase in 0..2 {
            let (idx, chunk) = if phase == 0 {
                (ctx.red_idx, &ctx.red_chunks[tid])
            } else {
                (ctx.black_idx, &ctx.black_chunks[tid])
            };
            let mut view = AtomicView(ctx.atomic_v);
            for &si in &idx[chunk.clone()] {
                local = local.max(solve_segment(
                    ctx.segments[si as usize],
                    ctx.factors,
                    ctx.w,
                    ctx.h,
                    ctx.g_h,
                    ctx.g_v,
                    ctx.fixed,
                    ctx.injection,
                    ctx.omega,
                    scratch,
                    &mut view,
                ));
            }
            // All writes of this color must land before any thread reads
            // them in the next phase.
            ctx.barrier.wait();
        }
        ctx.deltas[tid].store(local.to_bits(), Ordering::Relaxed);
        ctx.barrier.wait();
        if tid == 0 {
            let delta = ctx
                .deltas
                .iter()
                .take(ctx.threads)
                .map(|d| f64::from_bits(d.load(Ordering::Relaxed)))
                .fold(0.0f64, f64::max);
            ctx.final_delta.store(delta.to_bits(), Ordering::Relaxed);
            let done = ctx.sweeps_done.fetch_add(1, Ordering::Relaxed) + 1;
            if delta < ctx.tolerance {
                ctx.status.store(DONE, Ordering::Relaxed);
            } else if done >= ctx.max_sweeps {
                ctx.status.store(BUDGET, Ordering::Relaxed);
            }
        }
        ctx.barrier.wait();
        if ctx.status.load(Ordering::Relaxed) != RUN {
            return;
        }
    }
}

/// Shared context of one parallel batched solve.
struct BatchCtx<'a> {
    w: usize,
    h: usize,
    g_h: f64,
    g_v: f64,
    omega: f64,
    tolerance: f64,
    max_sweeps: usize,
    threads: usize,
    lanes: usize,
    fixed: &'a [bool],
    injection: &'a [f64],
    segments: &'a [Segment],
    red_idx: &'a [u32],
    black_idx: &'a [u32],
    red_chunks: &'a [Range<usize>],
    black_chunks: &'a [Range<usize>],
    factors: &'a FactoredSegments,
    atomic_v: &'a [AtomicU64],
    /// `threads × lanes` per-sweep delta slots.
    deltas: &'a [AtomicU64],
    /// Shared per-lane active flags (thread 0 is the only writer).
    active: &'a [AtomicBool],
    barrier: &'a Barrier,
    status: &'a AtomicUsize,
}

/// Reducer-only state of a parallel batched solve, owned by thread 0.
struct BatchLead<'a> {
    lanes: &'a mut [LaneReport],
    sweeps: &'a mut usize,
}

/// The per-thread loop of a parallel batched solve. Mirrors
/// [`solve_worker`]'s barrier structure; thread 0 (`lead` present)
/// reduces the per-lane deltas between sweeps and decides which lanes
/// freeze, so freezing — and therefore every lane's iterate — is
/// deterministic in the thread count.
fn batch_worker(
    ctx: &BatchCtx<'_>,
    tid: usize,
    scratch: &mut [f64],
    active: &mut [bool],
    delta: &mut [f64],
    mut lead: Option<BatchLead<'_>>,
) {
    let k = ctx.lanes;
    loop {
        // The lane-active flags only change while every worker is parked
        // at the post-reduce barrier, so a relaxed refresh here is safe.
        for (a, slot) in active.iter_mut().zip(ctx.active) {
            *a = slot.load(Ordering::Relaxed);
        }
        delta.fill(0.0);
        for phase in 0..2 {
            let (idx, chunk) = if phase == 0 {
                (ctx.red_idx, &ctx.red_chunks[tid])
            } else {
                (ctx.black_idx, &ctx.black_chunks[tid])
            };
            let mut view = AtomicView(ctx.atomic_v);
            for &si in &idx[chunk.clone()] {
                solve_segment_batch(
                    ctx.segments[si as usize],
                    ctx.factors,
                    ctx.w,
                    ctx.h,
                    ctx.g_h,
                    ctx.g_v,
                    ctx.fixed,
                    ctx.injection,
                    ctx.omega,
                    k,
                    active,
                    scratch,
                    &mut view,
                    delta,
                );
            }
            // All writes of this color must land before any thread reads
            // them in the next phase.
            ctx.barrier.wait();
        }
        for (j, &d) in delta.iter().enumerate() {
            ctx.deltas[tid * k + j].store(d.to_bits(), Ordering::Relaxed);
        }
        ctx.barrier.wait();
        if let Some(lead) = lead.as_mut() {
            *lead.sweeps += 1;
            let sweep = *lead.sweeps;
            let mut n_active = 0usize;
            for (j, lane) in lead.lanes.iter_mut().enumerate() {
                if lane.converged {
                    continue;
                }
                let d = (0..ctx.threads)
                    .map(|t| f64::from_bits(ctx.deltas[t * k + j].load(Ordering::Relaxed)))
                    .fold(0.0f64, f64::max);
                lane.iterations = sweep;
                lane.residual = d;
                if d < ctx.tolerance {
                    lane.converged = true;
                    ctx.active[j].store(false, Ordering::Relaxed);
                } else {
                    n_active += 1;
                }
            }
            if n_active == 0 {
                ctx.status.store(DONE, Ordering::Relaxed);
            } else if sweep >= ctx.max_sweeps {
                ctx.status.store(BUDGET, Ordering::Relaxed);
            }
        }
        ctx.barrier.wait();
        if ctx.status.load(Ordering::Relaxed) != RUN {
            return;
        }
    }
}

/// Collapses per-lane outcomes into the aggregate [`SolveReport`] of a
/// batched solve.
fn aggregate_report(lanes: &[LaneReport], sweeps: usize, workspace_bytes: usize) -> SolveReport {
    SolveReport {
        iterations: sweeps,
        residual: lanes.iter().fold(0.0f64, |m, l| m.max(l.residual)),
        converged: lanes.iter().all(|l| l.converged),
        workspace_bytes,
    }
}

/// Read/write access to the voltage image, monomorphized so the slice
/// (single-thread) and atomic (multi-thread) paths share one kernel.
trait VoltView {
    fn get(&self, i: usize) -> f64;
    fn set(&mut self, i: usize, value: f64);
}

struct SliceView<'a>(&'a mut [f64]);

impl VoltView for SliceView<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, value: f64) {
        self.0[i] = value;
    }
}

/// Atomic image view. Relaxed ordering suffices: phase barriers establish
/// the happens-before edges between writers of one color and readers of
/// the next phase, and within a phase no two threads touch the same node.
struct AtomicView<'a>(&'a [AtomicU64]);

impl VoltView for AtomicView<'_> {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.0[i].load(Ordering::Relaxed))
    }

    #[inline(always)]
    fn set(&mut self, i: usize, value: f64) {
        self.0[i].store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Solves one prefactored row segment exactly (given the current
/// neighbouring rows) and applies the (over-)relaxed update; returns the
/// largest update in the segment.
#[allow(clippy::too_many_arguments)]
#[inline]
fn solve_segment<V: VoltView>(
    seg: Segment,
    factors: &FactoredSegments,
    w: usize,
    h: usize,
    g_h: f64,
    g_v: f64,
    fixed: &[bool],
    injection: &[f64],
    omega: f64,
    scratch: &mut [f64],
    view: &mut V,
) -> f64 {
    let y = seg.row as usize;
    let start = seg.start as usize;
    let len = seg.len as usize;
    let row0 = y * w;
    let offset = seg.offset as usize;
    let mut max_delta = 0.0f64;
    // Forward pass: build each right-hand side entry from the frozen
    // neighbours and eliminate on the fly (no staging buffer).
    let mut prev = 0.0;
    for i in 0..len {
        let gx = start + i;
        let node = row0 + gx;
        let mut b = injection[node];
        if gx > 0 && fixed[node - 1] {
            b += g_h * view.get(node - 1);
        }
        if gx + 1 < w && fixed[node + 1] {
            b += g_h * view.get(node + 1);
        }
        if y > 0 {
            b += g_v * view.get(node - w);
        }
        if y + 1 < h {
            b += g_v * view.get(node + w);
        }
        let dp = factors.forward_step(offset + i, b, prev);
        scratch[i] = dp;
        prev = dp;
    }
    // Backward pass: substitute and apply the relaxed update in place.
    let mut next = 0.0;
    for i in (0..len).rev() {
        let xi = factors.backward_step(offset + i, scratch[i], next);
        let node = row0 + start + i;
        let old = view.get(node);
        let new = old + omega * (xi - old);
        let delta = (new - old).abs();
        if delta > max_delta {
            max_delta = delta;
        }
        view.set(node, new);
        next = xi;
    }
    max_delta
}

/// Batched [`solve_segment`]: solves one prefactored row segment for all
/// `k` lanes at once. `injection` and the view are node-major/lane-minor
/// (lane `j` of node `i` at `i * k + j`), so every inner loop over the
/// lanes is unit-stride while the factors, pin mask, and neighbour
/// offsets are loaded once per row. Lanes with `active[j] == false` are
/// computed but not applied (their voltages — and deltas — stay exactly
/// as they are), which keeps every active lane's arithmetic bitwise
/// identical to the scalar kernel. Per-lane maxima of the applied updates
/// accumulate into `delta`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn solve_segment_batch<V: VoltView>(
    seg: Segment,
    factors: &FactoredSegments,
    w: usize,
    h: usize,
    g_h: f64,
    g_v: f64,
    fixed: &[bool],
    injection: &[f64],
    omega: f64,
    k: usize,
    active: &[bool],
    scratch: &mut [f64],
    view: &mut V,
    delta: &mut [f64],
) {
    let y = seg.row as usize;
    let start = seg.start as usize;
    let len = seg.len as usize;
    let row0 = y * w;
    let offset = seg.offset as usize;
    // Forward pass: build each row of right-hand sides from the frozen
    // neighbours (same term order as the scalar kernel) and eliminate.
    for i in 0..len {
        let gx = start + i;
        let node = row0 + gx;
        let base = node * k;
        let (done, rest) = scratch.split_at_mut(i * k);
        let row = &mut rest[..k];
        row.copy_from_slice(&injection[base..base + k]);
        if gx > 0 && fixed[node - 1] {
            let nb = (node - 1) * k;
            for (j, b) in row.iter_mut().enumerate() {
                *b += g_h * view.get(nb + j);
            }
        }
        if gx + 1 < w && fixed[node + 1] {
            let nb = (node + 1) * k;
            for (j, b) in row.iter_mut().enumerate() {
                *b += g_h * view.get(nb + j);
            }
        }
        if y > 0 {
            let nb = (node - w) * k;
            for (j, b) in row.iter_mut().enumerate() {
                *b += g_v * view.get(nb + j);
            }
        }
        if y + 1 < h {
            let nb = (node + w) * k;
            for (j, b) in row.iter_mut().enumerate() {
                *b += g_v * view.get(nb + j);
            }
        }
        let prev = if i == 0 {
            None
        } else {
            Some(&done[(i - 1) * k..])
        };
        factors.forward_row(offset + i, row, prev);
    }
    // Backward pass: substitute row by row (in place in the scratch) and
    // apply the relaxed update for the active lanes.
    for i in (0..len).rev() {
        let (head, tail) = scratch.split_at_mut((i + 1) * k);
        let row = &mut head[i * k..];
        let next = if i + 1 == len { None } else { Some(&tail[..k]) };
        factors.backward_row(offset + i, row, next);
        let node = row0 + start + i;
        let base = node * k;
        for (j, &xi) in row.iter().enumerate() {
            let old = view.get(base + j);
            let relaxed = old + omega * (xi - old);
            let new = if active[j] { relaxed } else { old };
            let d = (new - old).abs();
            if d > delta[j] {
                delta[j] = d;
            }
            view.set(base + j, new);
        }
    }
}

/// Splits `idx` into `threads` contiguous chunks with approximately equal
/// total node counts (rows can have very different free-node counts when
/// pins cluster).
fn balance_chunks(segments: &[Segment], idx: &[u32], threads: usize) -> Vec<Range<usize>> {
    let total: usize = idx.iter().map(|&i| segments[i as usize].len as usize).sum();
    let mut chunks = Vec::with_capacity(threads);
    let mut pos = 0usize;
    let mut acc = 0usize;
    for t in 0..threads {
        let begin = pos;
        if t + 1 == threads {
            pos = idx.len();
        } else {
            let target = total * (t + 1) / threads;
            while pos < idx.len() && acc < target {
                acc += segments[idx[pos] as usize].len as usize;
                pos += 1;
            }
        }
        chunks.push(begin..pos);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowbased::RowBased;

    fn random_problem(seed: u64, w: usize, h: usize) -> (Vec<bool>, Vec<f64>, Vec<f64>) {
        let n = w * h;
        let mut s = seed.wrapping_add(11);
        let mut rnd = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64)
        };
        let mut fixed = vec![false; n];
        let mut v = vec![1.8; n];
        for i in 0..n {
            if rnd() < 0.25 {
                fixed[i] = true;
                v[i] = 1.7 + 0.2 * rnd();
            }
        }
        fixed[0] = true;
        let injection: Vec<f64> = (0..n)
            .map(|i| if fixed[i] { 0.0 } else { -1e-4 * rnd() })
            .collect();
        (fixed, v, injection)
    }

    fn engine(w: usize, h: usize, fixed: &[bool], schedule: SweepSchedule) -> TierEngine {
        TierEngine::new(w, h, 1.25, 0.8, Arc::from(fixed), None, schedule).unwrap()
    }

    #[test]
    fn sequential_engine_matches_generic_rowbased() {
        for seed in [1u64, 5, 23] {
            let (w, h) = (13, 9);
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v_engine = v0.clone();
            engine(w, h, &fixed, SweepSchedule::Sequential)
                .solve(&injection, &mut v_engine, 1e-11, 100_000)
                .unwrap();

            let mut v_ref = v0.clone();
            let problem = TierProblem {
                width: w,
                height: h,
                g_h: 1.25,
                g_v: 0.8,
                fixed: &fixed,
                extra_diag: &vec![0.0; w * h],
                injection: &injection,
            };
            RowBased {
                tolerance: 1e-11,
                ..Default::default()
            }
            .solve_tier(&problem, &mut v_ref)
            .unwrap();
            for i in 0..w * h {
                assert!(
                    (v_engine[i] - v_ref[i]).abs() < 1e-8,
                    "seed {seed} node {i}: engine {} vs rowbased {}",
                    v_engine[i],
                    v_ref[i]
                );
            }
        }
    }

    #[test]
    fn redblack_is_thread_count_invariant() {
        for seed in [2u64, 7] {
            let (w, h) = (17, 12);
            let (fixed, v0, injection) = random_problem(seed, w, h);
            let mut v1 = v0.clone();
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
                .solve(&injection, &mut v1, 1e-10, 100_000)
                .unwrap();
            for threads in [2usize, 4] {
                let mut vt = v0.clone();
                engine(w, h, &fixed, SweepSchedule::RedBlack { threads })
                    .solve(&injection, &mut vt, 1e-10, 100_000)
                    .unwrap();
                assert_eq!(
                    v1, vt,
                    "seed {seed}, {threads} threads must be bitwise equal"
                );
            }
        }
    }

    #[test]
    fn redblack_agrees_with_sequential_solution() {
        let (w, h) = (20, 15);
        let (fixed, v0, injection) = random_problem(3, w, h);
        let mut v_seq = v0.clone();
        engine(w, h, &fixed, SweepSchedule::Sequential)
            .solve(&injection, &mut v_seq, 1e-12, 200_000)
            .unwrap();
        let mut v_rb = v0.clone();
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 3 })
            .solve(&injection, &mut v_rb, 1e-12, 200_000)
            .unwrap();
        let worst = v_seq
            .iter()
            .zip(&v_rb)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= 1e-9, "schedules disagree by {worst} V");
    }

    #[test]
    fn sweep_once_parallel_matches_single_thread() {
        let (w, h) = (11, 8);
        let (fixed, v0, injection) = random_problem(9, w, h);
        let mut v1 = v0.clone();
        let mut e1 = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 });
        let d1 = e1.sweep_once(&injection, &mut v1, true, 1.0).unwrap();
        let mut v4 = v0.clone();
        let mut e4 = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 4 });
        let d4 = e4.sweep_once(&injection, &mut v4, true, 1.0).unwrap();
        assert_eq!(v1, v4);
        assert_eq!(d1, d4);
    }

    #[test]
    fn budget_exhaustion_is_error_on_both_paths() {
        let (w, h) = (16, 16);
        let mut fixed = vec![false; w * h];
        fixed[0] = true;
        let injection = vec![0.0; w * h];
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 2 },
        ] {
            let mut v = vec![0.0; w * h];
            v[0] = 1.8;
            let err = TierEngine::new(w, h, 1.0, 1.0, Arc::from(&fixed[..]), None, schedule)
                .unwrap()
                .solve(&injection, &mut v, 1e-15, 2)
                .unwrap_err();
            assert!(
                matches!(err, SolverError::DidNotConverge { iterations: 2, .. }),
                "{schedule:?}: {err:?}"
            );
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let fixed: Arc<[bool]> = Arc::from(vec![false; 4]);
        assert!(TierEngine::new(
            3,
            2,
            1.0,
            1.0,
            fixed.clone(),
            None,
            SweepSchedule::Sequential
        )
        .is_err());
        let fixed6: Arc<[bool]> = Arc::from(vec![false; 6]);
        assert!(TierEngine::new(
            3,
            2,
            -1.0,
            1.0,
            fixed6.clone(),
            None,
            SweepSchedule::Sequential
        )
        .is_err());
        let mut ok =
            TierEngine::new(3, 2, 1.0, 1.0, fixed6, None, SweepSchedule::Sequential).unwrap();
        let mut v = vec![0.0; 6];
        assert!(ok.solve(&[0.0; 5], &mut v, 1e-6, 10).is_err());
        assert!(ok
            .solve_with_omega(&[0.0; 6], &mut v, 1e-6, 10, 2.5)
            .is_err());
    }

    #[test]
    fn parallelism_maps_to_schedule() {
        assert_eq!(
            SweepSchedule::from_parallelism(0),
            SweepSchedule::Sequential
        );
        assert_eq!(
            SweepSchedule::from_parallelism(1),
            SweepSchedule::Sequential
        );
        assert_eq!(
            SweepSchedule::from_parallelism(4),
            SweepSchedule::RedBlack { threads: 4 }
        );
        assert_eq!(SweepSchedule::RedBlack { threads: 0 }.threads(), 1);
    }

    /// Interleaves lane-major vectors into the node-major batch layout.
    fn interleave(lanes: &[Vec<f64>]) -> Vec<f64> {
        let k = lanes.len();
        let n = lanes[0].len();
        let mut out = vec![0.0; n * k];
        for (j, lane) in lanes.iter().enumerate() {
            for i in 0..n {
                out[i * k + j] = lane[i];
            }
        }
        out
    }

    fn lane_of(batch: &[f64], j: usize, k: usize) -> Vec<f64> {
        batch.iter().skip(j).step_by(k).copied().collect()
    }

    /// Per-lane injections with different magnitudes so the lanes converge
    /// after different sweep counts (exercising the freeze logic).
    fn batch_fixture(
        seed: u64,
        w: usize,
        h: usize,
        k: usize,
    ) -> (Vec<bool>, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let (fixed, v0, injection) = random_problem(seed, w, h);
        let v0s = vec![v0; k];
        let injections: Vec<Vec<f64>> = (0..k)
            .map(|j| {
                let scale = 0.25 + 0.75 * j as f64;
                injection.iter().map(|&b| scale * b).collect()
            })
            .collect();
        (fixed, v0s, injections)
    }

    #[test]
    fn batch_lanes_are_bitwise_identical_to_solo_solves() {
        let (w, h, k) = (13, 9, 4);
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 1 },
            SweepSchedule::RedBlack { threads: 3 },
        ] {
            let (fixed, v0s, injections) = batch_fixture(6, w, h, k);
            let mut v = interleave(&v0s);
            let injection = interleave(&injections);
            let mut lanes = vec![LaneReport::default(); k];
            let agg = engine(w, h, &fixed, schedule)
                .solve_batch(&injection, &mut v, 1e-10, 100_000, &mut lanes)
                .unwrap();
            assert!(agg.converged, "{schedule:?}");
            for j in 0..k {
                let mut v_solo = v0s[j].clone();
                let rep = engine(w, h, &fixed, schedule)
                    .solve(&injections[j], &mut v_solo, 1e-10, 100_000)
                    .unwrap();
                assert_eq!(
                    lane_of(&v, j, k),
                    v_solo,
                    "{schedule:?} lane {j} must be bitwise identical"
                );
                assert_eq!(lanes[j].iterations, rep.iterations, "{schedule:?} lane {j}");
                assert_eq!(
                    lanes[j].residual.to_bits(),
                    rep.residual.to_bits(),
                    "{schedule:?} lane {j}"
                );
                assert!(lanes[j].converged);
            }
        }
    }

    #[test]
    fn batch_redblack_is_thread_count_invariant() {
        let (w, h, k) = (17, 12, 3);
        let (fixed, v0s, injections) = batch_fixture(8, w, h, k);
        let injection = interleave(&injections);
        let mut v1 = interleave(&v0s);
        let mut lanes1 = vec![LaneReport::default(); k];
        engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 1 })
            .solve_batch(&injection, &mut v1, 1e-10, 100_000, &mut lanes1)
            .unwrap();
        for threads in [2usize, 4] {
            let mut vt = interleave(&v0s);
            let mut lanes = vec![LaneReport::default(); k];
            engine(w, h, &fixed, SweepSchedule::RedBlack { threads })
                .solve_batch(&injection, &mut vt, 1e-10, 100_000, &mut lanes)
                .unwrap();
            assert_eq!(v1, vt, "{threads} threads must be bitwise equal");
            assert_eq!(lanes, lanes1);
        }
    }

    #[test]
    fn masked_lanes_stay_untouched() {
        let (w, h, k) = (11, 8, 3);
        let (fixed, v0s, injections) = batch_fixture(4, w, h, k);
        let injection = interleave(&injections);
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 2 },
        ] {
            let mut v = interleave(&v0s);
            let before = lane_of(&v, 1, k);
            let mask = [true, false, true];
            let mut lanes = vec![LaneReport::default(); k];
            engine(w, h, &fixed, schedule)
                .solve_batch_masked(
                    &injection,
                    &mut v,
                    1e-10,
                    100_000,
                    1.0,
                    Some(&mask),
                    &mut lanes,
                )
                .unwrap();
            assert_eq!(lane_of(&v, 1, k), before, "{schedule:?}");
            assert_eq!(lanes[1].iterations, 0);
            assert!(lanes[1].converged);
            // The active lanes still match their solo solves.
            let mut v_solo = v0s[0].clone();
            engine(w, h, &fixed, schedule)
                .solve(&injections[0], &mut v_solo, 1e-10, 100_000)
                .unwrap();
            assert_eq!(lane_of(&v, 0, k), v_solo, "{schedule:?}");
        }
    }

    #[test]
    fn batch_budget_exhaustion_reports_per_lane() {
        let (w, h) = (16, 16);
        let mut fixed = vec![false; w * h];
        fixed[0] = true;
        let k = 2;
        // Lane 0 trivially converged (zero injection, uniform start);
        // lane 1 needs real work but only gets 2 sweeps.
        let v0s = vec![vec![1.8; w * h], {
            let mut v = vec![0.0; w * h];
            v[0] = 1.8;
            v
        }];
        let injections = vec![vec![0.0; w * h]; k];
        for schedule in [
            SweepSchedule::Sequential,
            SweepSchedule::RedBlack { threads: 2 },
        ] {
            let mut v = interleave(&v0s);
            let injection = interleave(&injections);
            let mut lanes = vec![LaneReport::default(); k];
            let agg = engine(w, h, &fixed, schedule)
                .solve_batch(&injection, &mut v, 1e-12, 2, &mut lanes)
                .unwrap();
            assert!(!agg.converged, "{schedule:?}");
            assert!(lanes[0].converged, "{schedule:?}");
            assert!(!lanes[1].converged, "{schedule:?}");
            assert_eq!(lanes[1].iterations, 2);
            assert!(
                lanes[1].residual.is_finite() && lanes[1].residual > 1e-12,
                "{schedule:?}: lane 1 residual {}",
                lanes[1].residual
            );
            assert_eq!(agg.residual.to_bits(), lanes[1].residual.to_bits());
        }
    }

    #[test]
    fn batch_rejects_invalid_inputs() {
        let mut e = engine(6, 4, &[false; 24], SweepSchedule::Sequential);
        let mut lanes = vec![LaneReport::default(); 2];
        let mut v = vec![0.0; 48];
        let inj = vec![0.0; 48];
        // Wrong array length.
        assert!(e
            .solve_batch(&inj[..47], &mut v, 1e-6, 10, &mut lanes)
            .is_err());
        // Empty batch.
        assert!(e.solve_batch(&[], &mut [], 1e-6, 10, &mut []).is_err());
        // Bad mask length.
        assert!(e
            .solve_batch_masked(&inj, &mut v, 1e-6, 10, 1.0, Some(&[true]), &mut lanes)
            .is_err());
        // Bad omega.
        assert!(e
            .solve_batch_with_omega(&inj, &mut v, 1e-6, 10, 2.5, &mut lanes)
            .is_err());
    }

    #[test]
    fn chunks_cover_all_segments_without_overlap() {
        let (w, h) = (31, 23);
        let (fixed, _, _) = random_problem(4, w, h);
        let e = engine(w, h, &fixed, SweepSchedule::RedBlack { threads: 5 });
        for (idx, chunks) in [(&e.red_idx, &e.red_chunks), (&e.black_idx, &e.black_chunks)] {
            assert_eq!(chunks.len(), 5);
            let mut covered = 0usize;
            let mut expect_begin = 0usize;
            for c in chunks.iter() {
                assert_eq!(c.start, expect_begin, "chunks must be contiguous");
                expect_begin = c.end;
                covered += c.len();
            }
            assert_eq!(covered, idx.len());
            assert_eq!(expect_begin, idx.len());
        }
    }
}
