//! Baseline power grid solvers.
//!
//! The voltage propagation paper compares against three families of
//! methods, all provided here:
//!
//! * **Direct** — [`DirectCholesky`], the SPICE stand-in: one sparse
//!   Cholesky factorization of the MNA system.
//! * **Krylov** — [`ConjugateGradient`] and [`Pcg`] with pluggable
//!   preconditioners ([`PrecondKind`]: Jacobi, IC(0), SSOR, aggregation
//!   AMG), the paper's main comparator (refs \[6\], \[12\]). The
//!   serving-grade form is [`PcgEngine`]: the full 3-D system stamped
//!   and the IC(0) factor built once, warm solves allocation-free —
//!   `voltprop_core::Session` routes `Backend::Pcg` through it.
//! * **Stationary** — [`relax`] (point Jacobi / Gauss–Seidel / SOR), the
//!   structured [`RowBased`] method of Zhong & Wong (ref \[5\]) that the VP
//!   algorithm builds on, and [`Rb3d`], the naive extension of row-based
//!   iteration to 3-D whose convergence collapses when TSVs are strong
//!   (the paper's §III-A motivation).
//! * **Stochastic** — [`RandomWalkSolver`] (ref \[4\]), including the walk
//!   length statistics that expose the "trapped in TSVs" pathology.
//!
//! Matrix-based solvers implement [`LinearSolver`]; every `LinearSolver`
//! automatically solves whole stacks through [`StackSolver`] by stamping
//! the MNA system first. Structured solvers ([`Rb3d`],
//! [`RandomWalkSolver`]) implement [`StackSolver`] directly.
//!
//! # The prefactored engine and red-black parallelism
//!
//! The production row-sweep kernel is [`TierEngine`]: it cuts every grid
//! row into tridiagonal segments at the pinned nodes, factors each
//! segment **once** (the matrices never change between sweeps — only the
//! right-hand sides do), and then sweeps by substitution alone with zero
//! heap allocation. Its [`SweepSchedule`] picks the iteration order:
//!
//! * [`SweepSchedule::Sequential`] — the paper's alternating-direction
//!   row order; the default and the `parallelism = 1` special case.
//! * [`SweepSchedule::RedBlack`] — rows only couple to their vertical
//!   neighbours, so under an even/odd (red/black) row coloring every row
//!   of one color can be solved simultaneously while the other color is
//!   frozen. The engine runs each color phase across OS threads, and the
//!   result is **deterministic in the thread count** (bitwise identical
//!   for 1, 2, … threads); the converged solution agrees with the
//!   sequential schedule to the solve tolerance.
//!
//! Multi-threaded solves run on the persistent [`WorkerPool`]: threads
//! are spawned once per process, park between solves, and keep their
//! substitution scratch pinned, so **warm parallel solves are
//! allocation-free** end to end — the former per-solve scoped thread
//! spawn (~60 allocator calls) survives only as the
//! [`engine::ParDispatch::ScopedSpawn`] benchmark baseline.
//! [`Rb3d::parallelism`] and `voltprop_core`'s `VpConfig::parallelism`
//! expose the thread knob one level up.
//!
//! Both schedules also run **batched**: [`TierEngine::solve_batch`]
//! sweeps `k` right-hand sides together (node-major/lane-minor layout,
//! `i * k + j`), freezing each lane independently the moment its own
//! update drops below tolerance — so every lane is bitwise identical to
//! its standalone solve while the factor loads and thread handoffs are
//! amortized over the whole batch. Frozen lanes cost (almost) nothing:
//! each sweep **compacts to the active lanes** (gather → sweep →
//! scatter, falling back to a scalar per-lane kernel at very low active
//! counts), so one straggler in a wide batch pays a single solve's
//! arithmetic rather than the batch's. Per-lane outcomes come back as
//! [`LaneReport`]s.
//!
//! # Example
//!
//! ```
//! use voltprop_grid::{Stack3d, NetKind};
//! use voltprop_solvers::{DirectCholesky, Pcg, StackSolver};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stack = Stack3d::builder(8, 8, 3).uniform_load(1e-4).build()?;
//! let exact = DirectCholesky::new().solve_stack(&stack, NetKind::Power)?;
//! let pcg = Pcg::default().solve_stack(&stack, NetKind::Power)?;
//! let err = voltprop_solvers::residual::max_abs_error(
//!     &exact.voltages, &pcg.voltages);
//! assert!(err < 5e-4, "PCG within the paper's 0.5 mV budget");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amg;
mod cg;
mod direct;
pub mod engine;
mod error;
mod pcg;
pub mod pool;
mod precond;
pub mod random_walk;
pub mod rb3d;
pub mod relax;
mod report;
pub mod residual;
pub mod rowbased;
mod traits;

pub use amg::AmgHierarchy;
pub use cg::ConjugateGradient;
pub use direct::DirectCholesky;
pub use engine::{ParDispatch, SweepSchedule, TierEngine};
pub use error::SolverError;
pub use pcg::{Pcg, PcgEngine};
pub use pool::{PoolJob, WorkerPool, WorkerScratch};
pub use precond::{PrecondKind, Preconditioner};
pub use random_walk::RandomWalkSolver;
pub use rb3d::{Rb3d, Rb3dEngine};
pub use report::{LaneReport, SolveReport};
pub use rowbased::{RowBased, TierProblem};
pub use traits::{LinearSolver, Solution, StackSolution, StackSolver};
