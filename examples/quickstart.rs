//! Quickstart: build a 3-tier power grid, open a prefactored `Session`,
//! and print an IR-drop summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use voltprop::solvers::residual;
use voltprop::{LoadCase, LoadProfile, Session, Stack3d, VpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-tier 40x40 grid with the paper's parameters: TSV pillars at one
    // node in four (R_TSV = 0.05 ohm), pads above every pillar on the top
    // tier, and random 0.1-2 mA device loads everywhere else.
    let stack = Stack3d::builder(40, 40, 3)
        .load_profile(
            LoadProfile::UniformRandom {
                min: 1e-4,
                max: 2e-3,
            },
            42,
        )
        .build()?;

    println!("grid statistics:");
    println!("{}", voltprop::grid::stats::GridStats::of(&stack));
    println!();

    // All factorization happens here, once; every solve after this —
    // single, batched, transient, on either backend — reuses it.
    let mut session = Session::build(&stack, VpConfig::default())?;
    let view = session.solve(&LoadCase::new(&stack))?;
    println!("voltage propagation: {}", view.report());

    let drops = residual::ir_drop_report(stack.vdd(), view.voltages());
    let (tier, x, y) = stack.node_coords(drops.worst_node);
    println!();
    println!(
        "worst IR drop: {:.3} mV at tier {tier}, node ({x}, {y})",
        drops.max_drop * 1e3
    );
    println!("mean  IR drop: {:.3} mV", drops.mean_drop * 1e3);

    // The solver exposes the current each pillar delivers (phase 2 of the
    // algorithm computes them anyway).
    let busiest = view
        .pillar_currents()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("grid has pillars");
    let (px, py) = stack.tsv_sites()[busiest.0];
    println!(
        "busiest pillar: ({px}, {py}) delivering {:.3} mA",
        busiest.1 * 1e3
    );

    // New loads on the same geometry reuse every factorization: solve a
    // 30% hotter corner without rebuilding anything.
    let mut hot = stack.clone();
    hot.set_loads(stack.loads().iter().map(|l| 1.3 * l).collect())?;
    let hot_view = session.solve(&LoadCase::new(&hot))?;
    println!(
        "at 130% load the worst IR drop grows to {:.3} mV",
        hot_view.worst_drop(stack.vdd()) * 1e3
    );
    Ok(())
}
