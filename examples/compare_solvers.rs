//! Runs every solver family on the same benchmark grid and prints a
//! comparison table: iterations, runtime, workspace, and accuracy against
//! the direct reference — a miniature of the paper's Table I.
//!
//! ```sh
//! cargo run --release --example compare_solvers [edge]
//! ```
//!
//! `edge` is the per-tier footprint edge length (default 40 → 4 800 nodes).

use std::time::Instant;
use voltprop::solvers::residual;
use voltprop::{
    DirectCholesky, NetKind, Pcg, PrecondKind, Rb3d, StackSolver, SynthConfig, VpSolver,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let edge: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(40);
    let stack = SynthConfig::new(edge, edge, 3).seed(1).build()?;
    println!(
        "benchmark: {}x{}x3 = {} nodes, {} pillars\n",
        edge,
        edge,
        stack.num_nodes(),
        stack.tsv_sites().len()
    );

    let t0 = Instant::now();
    let reference = DirectCholesky::new().solve_stack(&stack, NetKind::Power)?;
    let t_direct = t0.elapsed();

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "solver", "iters", "time", "workspace", "max err"
    );
    let row = |name: &str, iters: usize, secs: f64, bytes: usize, err: f64| {
        println!(
            "{:<22} {:>10} {:>9.3} ms {:>9.2} MiB {:>9.4} mV",
            name,
            iters,
            secs * 1e3,
            bytes as f64 / (1024.0 * 1024.0),
            err * 1e3
        );
    };
    row(
        "direct-cholesky",
        1,
        t_direct.as_secs_f64(),
        reference.report.workspace_bytes,
        0.0,
    );

    let solvers: Vec<Box<dyn StackSolver>> = vec![
        Box::new(VpSolver::default()),
        Box::new(Pcg::with_preconditioner(PrecondKind::Ic0)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Amg)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Jacobi)),
        Box::new(Rb3d::default()),
    ];
    for solver in &solvers {
        let t0 = Instant::now();
        match solver.solve_stack(&stack, NetKind::Power) {
            Ok(sol) => {
                let err = residual::max_abs_error(&reference.voltages, &sol.voltages);
                row(
                    solver.solver_name(),
                    sol.report.iterations,
                    t0.elapsed().as_secs_f64(),
                    sol.report.workspace_bytes,
                    err,
                );
            }
            Err(e) => println!("{:<22} failed: {e}", solver.solver_name()),
        }
    }
    Ok(())
}
