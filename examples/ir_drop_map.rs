//! Renders per-tier ASCII heat maps of the IR drop for a hotspot workload —
//! the kind of floorplanning view a power-integrity engineer would pull up.
//!
//! ```sh
//! cargo run --release --example ir_drop_map
//! ```

use voltprop::{LoadCase, LoadProfile, Session, Stack3d, VpConfig};

const SHADES: &[u8] = b" .:-=+*#%@";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h, tiers) = (48, 24, 3);
    // One hotspot block per tier, at different locations: think a CPU
    // cluster on tier 0 and a GPU on tier 1, under an idle top tier.
    let stack = Stack3d::builder(w, h, tiers)
        .load_profile(
            LoadProfile::Hotspot {
                background: 5e-5,
                peak: 4e-3,
                centers: vec![(0, 10, 12), (1, 36, 8)],
                radius: 5.0,
            },
            0,
        )
        .build()?;

    let mut session = Session::build(&stack, VpConfig::default())?;
    let solution = session.solve(&LoadCase::new(&stack))?;
    let worst = solution.worst_drop(stack.vdd());
    println!(
        "IR-drop map ({}x{}x{} nodes, worst drop {:.2} mV, '@' = worst)",
        w,
        h,
        tiers,
        worst * 1e3
    );

    for tier in (0..tiers).rev() {
        println!();
        println!(
            "tier {tier}{}:",
            if tier == tiers - 1 { " (pads)" } else { "" }
        );
        for y in 0..h {
            let mut line = String::with_capacity(w);
            for x in 0..w {
                let v = solution.voltages()[stack.node_index(tier, x, y)];
                let drop = (stack.vdd() - v).max(0.0);
                let shade = ((drop / worst) * (SHADES.len() - 1) as f64).round() as usize;
                line.push(SHADES[shade.min(SHADES.len() - 1)] as char);
            }
            println!("  {line}");
        }
    }

    println!();
    println!(
        "solved by voltage propagation in {} outer iterations ({} row sweeps)",
        solution.report().outer_iterations,
        solution.report().inner_sweeps
    );
    Ok(())
}
