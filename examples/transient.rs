//! RC transient stepping through the batched solve path: a whole
//! activity waveform solved as one lane stream.
//!
//! Quasi-static transient analysis asks for the grid's voltage map at
//! every time step of a load waveform. The grid itself never changes —
//! only the block currents do — so the time steps are exactly the shape
//! [`VpSolver::solve_batch`] serves: factor the tiers once, make each
//! time step a batch lane, and sweep the whole waveform together.
//!
//! The workload models two RC-shaped activity transients on top of a
//! background load: a power-gated block charging up with time constant
//! `τ_on` (current `∝ 1 − e^{−t/τ}`) and a burst decaying with `τ_off`
//! (`∝ e^{−t/τ}`), plus a DVFS step halfway through. Early and late
//! steps sit near their asymptotes and converge in few outer iterations,
//! while mid-ramp steps work hardest — so lanes freeze at very different
//! times and the engines' active-lane compaction carries the stragglers:
//! frozen steps cost nothing in later inner sweeps.
//!
//! ```sh
//! cargo run --release --example transient
//! ```

use std::time::Instant;

use voltprop::{NetKind, Stack3d, VpScratch, VpSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h, tiers) = (40, 40, 3);
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(5e-5) // background activity on every node
        .build()?;
    let nn = stack.num_nodes();
    let per = w * h;

    // The waveform: T time steps of dt, two RC transients + a DVFS step.
    let steps = 24usize;
    let dt = 0.5; // in units of the block time constants below
    let tau_on = 3.0 * dt;
    let tau_off = 4.0 * dt;
    let in_block = |x: usize, y: usize, cx: usize, cy: usize| -> bool {
        x.abs_diff(cx) <= 6 && y.abs_diff(cy) <= 6
    };
    let mut loads = Vec::with_capacity(steps * nn);
    for s in 0..steps {
        let t = s as f64 * dt;
        let ramp_on = 1.0 - (-t / tau_on).exp(); // block A powering on
        let decay = (-t / tau_off).exp(); // block B burst dying out
        let dvfs = if s >= steps / 2 { 1.25 } else { 1.0 }; // global step
        for node in 0..nn {
            let tier = node / per;
            let (x, y) = ((node % per) % w, (node % per) / w);
            let mut i = stack.loads()[node];
            if tier == 0 && in_block(x, y, 10, 10) {
                i += 1.5e-3 * ramp_on;
            }
            if tier == 2 && in_block(x, y, 30, 28) {
                i += 1.0e-3 * decay;
            }
            loads.push(dvfs * i);
        }
    }

    // One batched call: every time step is a lane; lanes freeze as their
    // step converges, and the compacted kernels carry the stragglers.
    let solver = VpSolver::default();
    let mut scratch = VpScratch::new(&stack, &solver.config)?;
    let mut reports = Vec::new();
    solver.solve_batch(&stack, NetKind::Power, &loads, &mut scratch, &mut reports)?; // warm
    let start = Instant::now();
    solver.solve_batch(&stack, NetKind::Power, &loads, &mut scratch, &mut reports)?;
    let batched = start.elapsed();

    // Sequential reference: one warm solve_with per time step.
    let mut seq_scratch = VpScratch::new(&stack, &solver.config)?;
    let mut step_stack = stack.clone();
    let mut solve_all_steps = |scratch: &mut VpScratch| -> Result<(), Box<dyn std::error::Error>> {
        for s in 0..steps {
            step_stack.set_loads(loads[s * nn..(s + 1) * nn].to_vec())?;
            solver.solve_with(&step_stack, NetKind::Power, scratch)?;
        }
        Ok(())
    };
    solve_all_steps(&mut seq_scratch)?; // warm
    let start = Instant::now();
    solve_all_steps(&mut seq_scratch)?;
    let sequential = start.elapsed();

    println!(
        "transient: {steps} time steps over {w}x{h}x{tiers} nodes\n\
         batched   {:.1} ms ({:.2} ms/step)\n\
         one-by-one {:.1} ms ({:.2} ms/step)  ->  batch speedup {:.2}x\n",
        batched.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3 / steps as f64,
        sequential.as_secs_f64() * 1e3,
        sequential.as_secs_f64() * 1e3 / steps as f64,
        sequential.as_secs_f64() / batched.as_secs_f64(),
    );

    println!("  step   time    worst IR drop   outer  sweeps  status");
    let mut worst_step = (0usize, 0.0f64);
    for (s, rep) in reports.iter().enumerate() {
        let drop = scratch
            .batch_voltages(s)
            .iter()
            .fold(0.0f64, |m, &v| m.max(stack.vdd() - v));
        if drop > worst_step.1 {
            worst_step = (s, drop);
        }
        println!(
            "  {:>4}  {:>5.2}   {:>9.2} mV   {:>5}  {:>6}  {}",
            s,
            s as f64 * dt,
            drop * 1e3,
            rep.outer_iterations,
            rep.inner_sweeps,
            if rep.converged { "ok" } else { "NOT CONVERGED" },
        );
    }
    assert!(reports.iter().all(|r| r.converged), "all steps converge");
    println!(
        "\nworst transient IR drop: {:.2} mV at step {} (t = {:.2})",
        worst_step.1 * 1e3,
        worst_step.0,
        worst_step.0 as f64 * dt,
    );
    Ok(())
}
