//! The true transient engine: an RC step response on a decap-loaded 3-D
//! grid, stepped with companion models on a **single** prefactored
//! companion system.
//!
//! A block powers on: its current steps from zero to full draw. On a
//! purely resistive grid the voltage map would jump instantly; with the
//! grid's distributed capacitance and a decap bank stamped in
//! (`StackBuilder::grid_capacitance` / `decap`), the supply instead
//! *droops and recovers* with an RC time constant — exactly what
//! `Session::transient_dynamic` integrates. Discretizing
//! `G v + C v̇ = b(t)` with backward Euler folds `C/h` into the
//! conductance system, so every step is a solve against the same
//! `G + C/h` matrix: factored once, reused for the whole waveform
//! (`TransientReport::refactors` proves it), with the waveform streaming
//! in one step's loads at a time and the sink streaming out one step's
//! voltages at a time.
//!
//! As a cross-check, the quasi-static path (`Session::solve_steps`, the
//! renamed steps-as-lanes stepper) runs the same waveform without
//! dynamics: at t → ∞ both agree (DC), mid-transient the quasi-static
//! answer tracks the load instantly while the true transient lags with
//! τ — the gap **is** the decap action.
//!
//! ```sh
//! cargo run --release --example transient
//! ```

use std::time::Instant;

use voltprop::{
    Backend, FnWaveform, Integrator, LoadCase, Session, SolveParams, Stack3d, TraceSink,
    TransientParams, VpConfig,
};

/// Tolerances tight enough that integrator differences, not solver
/// noise, dominate the traces.
fn tight() -> SolveParams {
    SolveParams::new()
        .epsilon(1e-8)
        .inner_tolerance(1e-10)
        .max_inner_sweeps(100_000)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h_dim, tiers) = (40, 40, 3);
    let stack = Stack3d::builder(w, h_dim, tiers)
        .uniform_load(5e-5) // background activity on every node
        .grid_capacitance(2e-13) // distributed device + wire cap
        .decap(0, 10, 10, 2e-10) // decap bank beside the hot block
        .decap(0, 12, 10, 2e-10)
        .pad_capacitance(5e-13)
        .build()?;
    let per = w * h_dim;

    // The waveform: a block on tier 0 steps from 0 to full draw at t = 0
    // and a second burst block switches off halfway through.
    let steps = 200usize;
    let h = 2e-11; // 20 ps steps
    let in_block =
        |x: usize, y: usize, cx: usize, cy: usize| x.abs_diff(cx) <= 6 && y.abs_diff(cy) <= 6;
    let loads_at = |s: usize, loads: &mut [f64]| {
        let off_at = steps / 2;
        for (node, load) in loads.iter_mut().enumerate() {
            let tier = node / per;
            let (x, y) = ((node % per) % w, (node % per) / w);
            let mut i = stack.loads()[node];
            if tier == 0 && in_block(x, y, 10, 10) {
                i += 1.5e-3; // block A: full draw from t = 0+
            }
            if tier == 2 && in_block(x, y, 30, 28) && s < off_at {
                i += 1.0e-3; // block B: on until it gates off
            }
            *load = i;
        }
    };

    // One prefactored session serves everything below.
    let mut session = Session::build(&stack, VpConfig::default())?;

    // Watch the hottest node of block A (tier 0 center).
    let hot = 10 * w + 10;
    let watch = [hot];

    // --- The true transient: companion models, one prefactor ----------
    let mut run = |integrator: Integrator| -> Result<(TraceSink, _), voltprop::SessionError> {
        let mut wave = FnWaveform::new(steps, |s, _t, loads: &mut [f64]| loads_at(s, loads));
        let mut sink = TraceSink::with_capacity(steps, 1);
        let request = TransientParams::new(&stack, h)
            .integrator(integrator)
            .backend(Backend::VoltProp)
            .params(tight())
            .observe(&watch);
        let report = session.transient_dynamic(&mut wave, &mut sink, &request)?;
        Ok((sink, report))
    };
    run(Integrator::BackwardEuler)?; // warm (cold call builds the factor)
    let start = Instant::now();
    let (be_trace, be_report) = run(Integrator::BackwardEuler)?;
    let be_time = start.elapsed();
    let (trap_trace, _) = run(Integrator::Trapezoidal)?;
    assert_eq!(be_report.steps, steps);

    println!(
        "true transient: {steps} steps of {:.0} ps over {w}x{h_dim}x{tiers} nodes \
         ({:.1} nF on the net)\n\
         backward Euler: {:.1} ms ({:.0} steps/s), {} prefactor(s), {} solver iterations\n",
        h * 1e12,
        stack.total_capacitance() * 1e9,
        be_time.as_secs_f64() * 1e3,
        steps as f64 / be_time.as_secs_f64(),
        be_report.refactors,
        be_report.solver_iterations,
    );

    // --- Cross-check: the quasi-static stepper (no dynamics) -----------
    let view = session.solve_steps(&LoadCase::new(&stack).params(tight()), steps, |s, lane| {
        loads_at(s, lane);
    })?;
    assert!(view.converged());
    let static_trace: Vec<f64> = (0..steps)
        .map(|s| view.lane_voltages(s).map(|v| v[hot]))
        .collect::<Result<_, _>>()?;

    println!("  step   t(ps)   quasi-static    BE transient    trap transient");
    for s in [0, 1, 3, 7, 15, 40, 99, 100, 101, 105, 150, steps - 1] {
        println!(
            "  {:>4}  {:>6.0}   {:>9.2} mV    {:>9.2} mV    {:>9.2} mV",
            s,
            (s as f64 + 1.0) * h * 1e12,
            (stack.vdd() - static_trace[s]) * 1e3,
            (stack.vdd() - be_trace.step_values(s)[0]) * 1e3,
            (stack.vdd() - trap_trace.step_values(s)[0]) * 1e3,
        );
    }

    // Quantify the decap action: the quasi-static droop is immediate,
    // the true transient's worst droop is later and no deeper.
    let worst = |trace: &[f64]| {
        trace
            .iter()
            .enumerate()
            .map(|(s, &v)| (s, stack.vdd() - v))
            .fold((0usize, 0.0f64), |m, c| if c.1 > m.1 { c } else { m })
    };
    let be_flat: Vec<f64> = (0..steps).map(|s| be_trace.step_values(s)[0]).collect();
    let (sq, dq) = worst(&static_trace);
    let (st, dt) = worst(&be_flat);
    println!(
        "\nworst droop at the hot node: quasi-static {:.2} mV at step {sq}, \
         true transient {:.2} mV at step {st}",
        dq * 1e3,
        dt * 1e3,
    );

    // At the end of a long settled stretch the transient has converged to
    // the quasi-static (DC) answer — the cross-check that both paths
    // solve the same grid.
    let settle = steps / 2 - 1; // last step before block B gates off
    let gap = (static_trace[settle] - be_trace.step_values(settle)[0]).abs();
    assert!(
        gap < 1e-4,
        "settled transient must match the DC answer (gap {gap} V)"
    );
    println!(
        "settled-vs-DC gap at step {settle}: {:.1} µV (same grid, same answer)",
        gap * 1e6
    );
    Ok(())
}
