//! RC transient stepping through `Session::transient`: a whole activity
//! waveform solved as one lane stream on prefactored state.
//!
//! Quasi-static transient analysis asks for the grid's voltage map at
//! every time step of a load waveform. The grid itself never changes —
//! only the block currents do — so the time steps are exactly the shape
//! the session's batched path serves: factor the tiers once
//! (`Session::build`), hand `Session::transient` a closure that writes
//! each step's loads, and the stepper sweeps the whole waveform together
//! with the steps as batch lanes.
//!
//! The workload models two RC-shaped activity transients on top of a
//! background load: a power-gated block charging up with time constant
//! `τ_on` (current `∝ 1 − e^{−t/τ}`) and a burst decaying with `τ_off`
//! (`∝ e^{−t/τ}`), plus a DVFS step halfway through. Early and late
//! steps sit near their asymptotes and converge in few outer iterations,
//! while mid-ramp steps work hardest — so lanes freeze at very different
//! times and the engines' active-lane compaction carries the stragglers:
//! frozen steps cost nothing in later inner sweeps.
//!
//! ```sh
//! cargo run --release --example transient
//! ```

use std::time::Instant;

use voltprop::{LoadCase, Session, Stack3d, VpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h, tiers) = (40, 40, 3);
    let stack = Stack3d::builder(w, h, tiers)
        .uniform_load(5e-5) // background activity on every node
        .build()?;
    let nn = stack.num_nodes();
    let per = w * h;

    // The waveform: T time steps of dt, two RC transients + a DVFS step.
    let steps = 24usize;
    let dt = 0.5; // in units of the block time constants below
    let tau_on = 3.0 * dt;
    let tau_off = 4.0 * dt;
    let in_block = |x: usize, y: usize, cx: usize, cy: usize| -> bool {
        x.abs_diff(cx) <= 6 && y.abs_diff(cy) <= 6
    };
    // Writes time step `s`'s load vector (the session stages the steps
    // into its own lane buffer, so warm calls allocate nothing).
    let waveform = |s: usize, loads: &mut [f64]| {
        let t = s as f64 * dt;
        let ramp_on = 1.0 - (-t / tau_on).exp(); // block A powering on
        let decay = (-t / tau_off).exp(); // block B burst dying out
        let dvfs = if s >= steps / 2 { 1.25 } else { 1.0 }; // global step
        for (node, load) in loads.iter_mut().enumerate() {
            let tier = node / per;
            let (x, y) = ((node % per) % w, (node % per) / w);
            let mut i = stack.loads()[node];
            if tier == 0 && in_block(x, y, 10, 10) {
                i += 1.5e-3 * ramp_on;
            }
            if tier == 2 && in_block(x, y, 30, 28) {
                i += 1.0e-3 * decay;
            }
            *load = dvfs * i;
        }
    };

    // One prefactored session serves the whole study: the transient
    // stream and the step-by-step reference below share its factors.
    let mut session = Session::build(&stack, VpConfig::default())?;
    let case = LoadCase::new(&stack);
    session.transient(&case, steps, waveform)?; // warm
    let start = Instant::now();
    let view = session.transient(&case, steps, waveform)?;
    let batched = start.elapsed();
    assert!(view.converged(), "all steps converge");

    // Collect per-step results before reusing the session (the view
    // borrows its arenas).
    let step_drops: Vec<f64> = (0..steps)
        .map(|s| view.lane_worst_drop(s, stack.vdd()))
        .collect::<Result<_, _>>()?;
    let step_reports: Vec<_> = view.reports().to_vec();

    // Sequential reference: one warm single-case solve per time step.
    let mut step_stack = stack.clone();
    let mut step_loads = vec![0.0; nn];
    let mut solve_all_steps = |session: &mut Session| -> Result<(), Box<dyn std::error::Error>> {
        for s in 0..steps {
            waveform(s, &mut step_loads);
            step_stack.set_loads(step_loads.clone())?;
            session.solve(&LoadCase::new(&step_stack))?;
        }
        Ok(())
    };
    solve_all_steps(&mut session)?; // warm
    let start = Instant::now();
    solve_all_steps(&mut session)?;
    let sequential = start.elapsed();

    println!(
        "transient: {steps} time steps over {w}x{h}x{tiers} nodes\n\
         batched   {:.1} ms ({:.2} ms/step)\n\
         one-by-one {:.1} ms ({:.2} ms/step)  ->  batch speedup {:.2}x\n",
        batched.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3 / steps as f64,
        sequential.as_secs_f64() * 1e3,
        sequential.as_secs_f64() * 1e3 / steps as f64,
        sequential.as_secs_f64() / batched.as_secs_f64(),
    );

    println!("  step   time    worst IR drop   outer  sweeps  status");
    let mut worst_step = (0usize, 0.0f64);
    for (s, (drop, rep)) in step_drops.iter().zip(&step_reports).enumerate() {
        if *drop > worst_step.1 {
            worst_step = (s, *drop);
        }
        println!(
            "  {:>4}  {:>5.2}   {:>9.2} mV   {:>5}  {:>6}  {}",
            s,
            s as f64 * dt,
            drop * 1e3,
            rep.outer_iterations,
            rep.inner_sweeps,
            if rep.converged { "ok" } else { "NOT CONVERGED" },
        );
    }
    println!(
        "\nworst transient IR drop: {:.2} mV at step {} (t = {:.2})",
        worst_step.1 * 1e3,
        worst_step.0,
        worst_step.0 as f64 * dt,
    );
    Ok(())
}
