//! A what-if load sweep through the session's batched path: one
//! prefactored `Session`, many load scenarios, every scenario's worst IR
//! drop in one batched call.
//!
//! Power-integrity sign-off rarely asks one question. It asks a family:
//! "what if the GPU cluster runs 20% hotter? what if we derate the cache?
//! what if everything scales with a DVFS step?" Each variant is the same
//! grid with different currents — exactly the shape
//! [`Session::solve_batch`] serves: the tier matrices are factored once
//! at `Session::build`, and all scenarios sweep together with a
//! unit-stride inner loop.
//!
//! ```sh
//! cargo run --release --example load_sweep
//! ```

use std::time::Instant;

use voltprop::{LoadProfile, LoadSet, Session, Stack3d, VpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h, tiers) = (48, 48, 3);
    let stack = Stack3d::builder(w, h, tiers)
        .load_profile(
            LoadProfile::Hotspot {
                background: 5e-5,
                peak: 2e-3,
                centers: vec![(0, 12, 12), (1, 36, 30)],
                radius: 6.0,
            },
            7,
        )
        .build()?;
    let nn = stack.num_nodes();

    // The scenario family: global DVFS-style scaling steps of the nominal
    // workload from 60% to 150%.
    let scales: Vec<f64> = (0..16).map(|i| 0.6 + 0.06 * i as f64).collect();
    let mut loads = Vec::with_capacity(scales.len() * nn);
    for &scale in &scales {
        loads.extend(stack.loads().iter().map(|l| scale * l));
    }

    let mut session = Session::build(&stack, VpConfig::default())?;
    let start = Instant::now();
    let view = session.solve_batch(&LoadSet::new(&stack, &loads))?;
    let elapsed = start.elapsed();

    println!(
        "swept {} scenarios over {}x{}x{} nodes in {:.1} ms ({:.2} ms per scenario)",
        scales.len(),
        w,
        h,
        tiers,
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e3 / scales.len() as f64,
    );
    println!("\n scale   worst IR drop   outer  sweeps  status");
    let mut last_ok = None;
    for (j, &scale) in scales.iter().enumerate() {
        let worst_drop = view.lane_worst_drop(j, stack.vdd())?;
        let rep = view.lane_report(j)?;
        println!(
            " {:>4.0}%   {:>9.2} mV   {:>5}  {:>6}  {}",
            scale * 100.0,
            worst_drop * 1e3,
            rep.outer_iterations,
            rep.inner_sweeps,
            if rep.converged { "ok" } else { "NOT CONVERGED" },
        );
        // A 5% supply budget at 1.8 V: find the highest scenario inside it.
        if rep.converged && worst_drop <= 0.05 * stack.vdd() {
            last_ok = Some(scale);
        }
    }
    match last_ok {
        Some(scale) => println!(
            "\nhighest workload inside the 5% IR-drop budget: {:.0}%",
            scale * 100.0
        ),
        None => println!("\nno swept workload stays inside the 5% IR-drop budget"),
    }
    Ok(())
}
