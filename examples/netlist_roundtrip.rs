//! IBM-format interoperability: synthesize a benchmark, export it as a
//! SPICE netlist, parse it back, and verify both representations solve to
//! the same voltages.
//!
//! ```sh
//! cargo run --release --example netlist_roundtrip
//! ```

use voltprop::solvers::residual;
use voltprop::{
    DirectCholesky, NetKind, Netlist, NetlistCircuit, Stack3d, StackSolver, SynthConfig, VpSolver,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stack = SynthConfig::new(16, 16, 3).seed(7).build()?;

    // Export the power net in the IBM SPICE dialect.
    let netlist = stack.to_netlist(NetKind::Power);
    let spice = netlist.to_spice();
    println!(
        "exported netlist: {} cards, {} bytes",
        netlist.len(),
        spice.len()
    );
    println!("first lines:");
    for line in spice.lines().take(5) {
        println!("  {line}");
    }

    // Parse it back two ways: as a generic circuit (what you would do with
    // a foreign netlist) and as a structured stack.
    let parsed = Netlist::parse(&spice)?;
    let circuit = NetlistCircuit::elaborate(&parsed)?;
    circuit.check_connectivity()?;
    println!(
        "parsed back: {} named nodes, reconstructing structured stack …",
        circuit.num_nodes()
    );
    let rebuilt = Stack3d::from_netlist(&parsed)?;
    assert_eq!(stack, rebuilt, "round-trip must preserve the model");

    // Solve the generic circuit with the direct solver and the structured
    // stack with voltage propagation; they must agree.
    let sys = circuit.stamp()?;
    let chol = voltprop::sparse::Cholesky::factor(sys.matrix())?;
    let full = sys.expand(&chol.solve(sys.rhs()));

    let vp = VpSolver::default().solve_stack(&rebuilt, NetKind::Power)?;

    // Compare node by node through the name mapping.
    let mut worst: f64 = 0.0;
    for tier in 0..stack.tiers() {
        for y in 0..stack.height() {
            for x in 0..stack.width() {
                let name = voltprop::grid::netlist::names::node_name(tier, x, y);
                let v_netlist = circuit
                    .voltage_of(&full, &name)
                    .expect("node exists in netlist");
                let v_vp = vp.voltages[rebuilt.node_index(tier, x, y)];
                worst = worst.max((v_netlist - v_vp).abs());
            }
        }
    }
    println!("worst netlist-vs-VP disagreement: {:.4} mV", worst * 1e3);
    assert!(worst < 5e-4, "representations disagree beyond 0.5 mV");

    // Sanity: the direct solve on the structured stack agrees too.
    let direct = DirectCholesky::new().solve_stack(&rebuilt, NetKind::Power)?;
    let err = residual::max_abs_error(&direct.voltages, &vp.voltages);
    println!("worst direct-vs-VP disagreement:  {:.4} mV", err * 1e3);
    println!("round trip OK");
    Ok(())
}
