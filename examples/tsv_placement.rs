//! TSV placement study: sweep pillar density and placement strategy and
//! report the worst IR drop — the kind of early-floorplanning exploration
//! the paper's "oblivious to TSV distribution" property enables.
//!
//! ```sh
//! cargo run --release --example tsv_placement
//! ```

use voltprop::{LoadCase, LoadProfile, Session, Stack3d, TsvPattern, VpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (32, 32);
    let loads = LoadProfile::Hotspot {
        background: 1e-4,
        peak: 2e-3,
        centers: vec![(0, 8, 8), (1, 24, 24)],
        radius: 6.0,
    };

    println!("pillar density sweep (uniform placement):");
    println!(
        "{:<28} {:>8} {:>14} {:>8}",
        "pattern", "pillars", "worst drop", "outers"
    );
    for pitch in [2usize, 4, 8] {
        report(
            &format!("uniform pitch {pitch}"),
            Stack3d::builder(w, h, 3)
                .tsv_pattern(TsvPattern::Uniform { pitch })
                .load_profile(loads.clone(), 3)
                .build()?,
        )?;
    }

    println!();
    println!("placement strategies at equal pillar count (~64):");
    println!(
        "{:<28} {:>8} {:>14} {:>8}",
        "pattern", "pillars", "worst drop", "outers"
    );
    report(
        "uniform pitch 4",
        Stack3d::builder(w, h, 3)
            .tsv_pattern(TsvPattern::Uniform { pitch: 4 })
            .load_profile(loads.clone(), 3)
            .build()?,
    )?;
    report(
        "random (seeded)",
        Stack3d::builder(w, h, 3)
            .tsv_pattern(TsvPattern::Random { count: 64, seed: 9 })
            .load_profile(loads.clone(), 3)
            .build()?,
    )?;
    report(
        "clustered on hotspots",
        Stack3d::builder(w, h, 3)
            .tsv_pattern(TsvPattern::Clustered {
                centers: vec![(8, 8), (24, 24)],
                radius: 3,
            })
            .load_profile(loads.clone(), 3)
            .build()?,
    )?;

    println!();
    println!("note: clustering pillars on the hotspots shortens the vertical");
    println!("delivery path exactly where current is drawn, cutting the worst");
    println!("drop at the same pillar budget.");
    Ok(())
}

fn report(label: &str, stack: Stack3d) -> Result<(), Box<dyn std::error::Error>> {
    // Geometry differs per pattern, so each study point gets its own
    // prefactored session.
    let mut session = Session::build(&stack, VpConfig::default())?;
    let sol = session.solve(&LoadCase::new(&stack))?;
    let worst = sol.worst_drop(stack.vdd());
    println!(
        "{:<28} {:>8} {:>11.2} mV {:>8}",
        label,
        stack.tsv_sites().len(),
        worst * 1e3,
        sol.report().outer_iterations
    );
    Ok(())
}
