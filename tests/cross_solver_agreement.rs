//! Integration: every solver family must agree with the direct reference
//! within the paper's 0.5 mV accuracy budget on a shared benchmark.

use voltprop::solvers::residual;
use voltprop::{
    Backend, DirectCholesky, LoadCase, NetKind, Pcg, PrecondKind, Rb3d, Session, SolveParams,
    StackSolver, SynthConfig, VpConfig, VpSolver,
};

const HALF_MV: f64 = 5e-4;

fn benchmark() -> voltprop::Stack3d {
    SynthConfig::new(20, 20, 3).seed(123).build().unwrap()
}

#[test]
fn all_solvers_agree_on_power_net() {
    let stack = benchmark();
    let reference = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    let solvers: Vec<Box<dyn StackSolver>> = vec![
        Box::new(VpSolver::default()),
        Box::new(Pcg::with_preconditioner(PrecondKind::Ic0)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Amg)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Jacobi)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Ssor(1.3))),
        Box::new(Rb3d::default()),
    ];
    for solver in &solvers {
        let sol = solver.solve_stack(&stack, NetKind::Power).unwrap();
        let err = residual::max_abs_error(&reference.voltages, &sol.voltages);
        assert!(
            err < HALF_MV,
            "{} deviates {:.4} mV from the direct reference",
            solver.solver_name(),
            err * 1e3
        );
        assert!(sol.report.converged, "{}", solver.solver_name());
    }
}

#[test]
fn all_solvers_agree_on_ground_net() {
    let stack = benchmark();
    let reference = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Ground)
        .unwrap();
    for solver in [
        Box::new(VpSolver::default()) as Box<dyn StackSolver>,
        Box::new(Pcg::default()),
        Box::new(Rb3d::default()),
    ] {
        let sol = solver.solve_stack(&stack, NetKind::Ground).unwrap();
        let err = residual::max_abs_error(&reference.voltages, &sol.voltages);
        assert!(
            err < HALF_MV,
            "{} ground-net error {:.4} mV",
            solver.solver_name(),
            err * 1e3
        );
    }
}

#[test]
fn vp_solution_satisfies_kcl_matrix_free() {
    let stack = benchmark();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let vp = session.solve(&LoadCase::new(&stack)).unwrap();
    let r = residual::kcl_residual_inf(&stack, NetKind::Power, vp.voltages());
    // Load currents are milliamps; nodal mismatch must sit well below one
    // device's draw.
    assert!(r < 5e-2, "KCL residual {r} A");
}

#[test]
fn vp_beats_naive_rb3d_iterations() {
    // The motivating comparison of §III-A: on the same grid the naive RB
    // extension needs far more full-stack sweeps than VP needs row sweeps
    // per tier.
    // Both methods run on one session's prefactored state: the same
    // comparison the paper makes, now apples to apples by construction.
    let stack = benchmark();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let vp_outer = session
        .solve(&LoadCase::new(&stack))
        .unwrap()
        .report()
        .outer_iterations;
    let rb_params = SolveParams::new()
        .inner_tolerance(1e-7)
        .max_inner_sweeps(200_000);
    let rb_outer = session
        .solve(
            &LoadCase::new(&stack)
                .backend(Backend::Rb3d)
                .params(rb_params),
        )
        .unwrap()
        .report()
        .outer_iterations;
    assert!(
        vp_outer < rb_outer,
        "VP {vp_outer} outer iterations vs naive RB {rb_outer}"
    );
}
