//! Integration: every solver family must agree with the direct reference
//! within the paper's 0.5 mV accuracy budget on a shared benchmark.

use voltprop::solvers::residual;
use voltprop::{
    Backend, DirectCholesky, LoadCase, NetKind, Pcg, Precision, PrecondKind, Rb3d, Session,
    SolveParams, StackSolver, SynthConfig, VpConfig, VpSolver,
};

const HALF_MV: f64 = 5e-4;

fn benchmark() -> voltprop::Stack3d {
    SynthConfig::new(20, 20, 3).seed(123).build().unwrap()
}

#[test]
fn all_solvers_agree_on_power_net() {
    let stack = benchmark();
    let reference = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    let solvers: Vec<Box<dyn StackSolver>> = vec![
        Box::new(VpSolver::default()),
        Box::new(Pcg::with_preconditioner(PrecondKind::Ic0)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Amg)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Jacobi)),
        Box::new(Pcg::with_preconditioner(PrecondKind::Ssor(1.3))),
        Box::new(Rb3d::default()),
    ];
    for solver in &solvers {
        let sol = solver.solve_stack(&stack, NetKind::Power).unwrap();
        let err = residual::max_abs_error(&reference.voltages, &sol.voltages);
        assert!(
            err < HALF_MV,
            "{} deviates {:.4} mV from the direct reference",
            solver.solver_name(),
            err * 1e3
        );
        assert!(sol.report.converged, "{}", solver.solver_name());
    }
}

#[test]
fn all_solvers_agree_on_ground_net() {
    let stack = benchmark();
    let reference = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Ground)
        .unwrap();
    for solver in [
        Box::new(VpSolver::default()) as Box<dyn StackSolver>,
        Box::new(Pcg::default()),
        Box::new(Rb3d::default()),
    ] {
        let sol = solver.solve_stack(&stack, NetKind::Ground).unwrap();
        let err = residual::max_abs_error(&reference.voltages, &sol.voltages);
        assert!(
            err < HALF_MV,
            "{} ground-net error {:.4} mV",
            solver.solver_name(),
            err * 1e3
        );
    }
}

/// The agreement gate: VoltProp (f64 **and** mixed precision), Rb3d, and
/// Pcg served from **one** prefactored session must agree with the
/// direct reference — and with each other — within the paper's 0.5 mV
/// budget, on both nets.
fn assert_three_way_agreement(stack: &voltprop::Stack3d, label: &str) {
    let mut session = Session::build(stack, VpConfig::default()).unwrap();
    let rb_params = SolveParams::new()
        .inner_tolerance(1e-7)
        .max_inner_sweeps(200_000);
    let pcg_params = SolveParams::new()
        .inner_tolerance(1e-8)
        .max_inner_sweeps(50_000);
    let mixed_params = SolveParams::new().precision(Precision::MixedF32);
    for net in [NetKind::Power, NetKind::Ground] {
        let reference = DirectCholesky::new().solve_stack(stack, net).unwrap();
        let vp = session
            .solve(&LoadCase::new(stack).net(net))
            .unwrap()
            .voltages()
            .to_vec();
        let vp_mixed = session
            .solve(&LoadCase::new(stack).net(net).params(mixed_params))
            .unwrap()
            .voltages()
            .to_vec();
        let rb = session
            .solve(
                &LoadCase::new(stack)
                    .net(net)
                    .backend(Backend::Rb3d)
                    .params(rb_params),
            )
            .unwrap()
            .voltages()
            .to_vec();
        let pcg = session
            .solve(
                &LoadCase::new(stack)
                    .net(net)
                    .backend(Backend::Pcg)
                    .params(pcg_params),
            )
            .unwrap()
            .voltages()
            .to_vec();
        for (name, v) in [
            ("voltprop", &vp),
            ("voltprop-mixed", &vp_mixed),
            ("rb3d", &rb),
            ("pcg", &pcg),
        ] {
            let err = residual::max_abs_error(&reference.voltages, v);
            assert!(
                err < HALF_MV,
                "{label} {net:?}: {name} deviates {:.4} mV from direct",
                err * 1e3
            );
        }
        for (pair, a, b) in [
            ("vp-pcg", &vp, &pcg),
            ("vp-rb3d", &vp, &rb),
            ("vp-mixed", &vp, &vp_mixed),
        ] {
            let err = residual::max_abs_error(a, b);
            assert!(
                err < HALF_MV,
                "{label} {net:?}: {pair} disagree by {:.4} mV",
                err * 1e3
            );
        }
    }
}

#[test]
fn three_backends_agree_on_one_session_synth_benchmark() {
    assert_three_way_agreement(&benchmark(), "synth 20x20x3");
}

#[test]
fn three_backends_agree_on_one_session_sparse_pads() {
    // The IBM-like coarse bump lattice: most pillars pad-less.
    let mut pads = vec![];
    for y in (0..16).step_by(8) {
        for x in (0..16).step_by(8) {
            pads.push((x, y));
        }
    }
    let stack = voltprop::Stack3d::builder(16, 16, 2)
        .pad_sites(pads)
        .load_profile(
            voltprop::LoadProfile::UniformRandom {
                min: 1e-5,
                max: 5e-4,
            },
            7,
        )
        .build()
        .unwrap();
    assert_three_way_agreement(&stack, "sparse pads 16x16x2");
}

#[test]
fn three_backends_agree_on_one_session_anisotropic_tiers() {
    let stack = voltprop::Stack3d::builder(9, 11, 3)
        .tier_resistance(0, 0.015, 0.03)
        .tier_resistance(1, 0.04, 0.02)
        .tier_resistance(2, 0.025, 0.025)
        .uniform_load(4e-4)
        .build()
        .unwrap();
    assert_three_way_agreement(&stack, "anisotropic 9x11x3");
}

#[test]
fn three_backends_agree_on_one_session_four_tier() {
    let stack = voltprop::Stack3d::builder(10, 10, 4)
        .load_profile(
            voltprop::LoadProfile::UniformRandom {
                min: 1e-5,
                max: 5e-4,
            },
            7,
        )
        .build()
        .unwrap();
    assert_three_way_agreement(&stack, "four tier 10x10x4");
}

#[test]
fn three_backends_agree_on_one_session_single_tier() {
    let stack = voltprop::Stack3d::builder(12, 12, 1)
        .load_profile(
            voltprop::LoadProfile::UniformRandom {
                min: 1e-5,
                max: 1e-3,
            },
            11,
        )
        .build()
        .unwrap();
    assert_three_way_agreement(&stack, "single tier 12x12x1");
}

#[test]
fn starved_refinement_budget_reports_unconverged() {
    // A mixed-precision solve whose f32 sweep budget cannot reach the
    // tolerance must say so honestly: `converged = false` with a finite
    // residual, never a silent pass. Single-tier routes the budget
    // straight into the refinement loop, so the starvation is direct.
    let stack = voltprop::Stack3d::builder(12, 12, 1)
        .load_profile(
            voltprop::LoadProfile::UniformRandom {
                min: 1e-5,
                max: 1e-3,
            },
            11,
        )
        .build()
        .unwrap();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let starved = SolveParams::new()
        .precision(Precision::MixedF32)
        .inner_tolerance(1e-14)
        .max_inner_sweeps(2);
    let view = session
        .solve(&LoadCase::new(&stack).params(starved))
        .unwrap();
    let rep = view.report();
    assert!(!rep.converged, "2 f32 sweeps cannot reach 1e-14");
    assert!(
        rep.pad_mismatch.is_finite() && rep.pad_mismatch > 1e-14,
        "true residual must be reported, got {}",
        rep.pad_mismatch
    );
}

#[test]
fn vp_solution_satisfies_kcl_matrix_free() {
    let stack = benchmark();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let vp = session.solve(&LoadCase::new(&stack)).unwrap();
    let r = residual::kcl_residual_inf(&stack, NetKind::Power, vp.voltages());
    // Load currents are milliamps; nodal mismatch must sit well below one
    // device's draw.
    assert!(r < 5e-2, "KCL residual {r} A");
}

#[test]
fn vp_beats_naive_rb3d_iterations() {
    // The motivating comparison of §III-A: on the same grid the naive RB
    // extension needs far more full-stack sweeps than VP needs row sweeps
    // per tier.
    // Both methods run on one session's prefactored state: the same
    // comparison the paper makes, now apples to apples by construction.
    let stack = benchmark();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let vp_outer = session
        .solve(&LoadCase::new(&stack))
        .unwrap()
        .report()
        .outer_iterations;
    let rb_params = SolveParams::new()
        .inner_tolerance(1e-7)
        .max_inner_sweeps(200_000);
    let rb_outer = session
        .solve(
            &LoadCase::new(&stack)
                .backend(Backend::Rb3d)
                .params(rb_params),
        )
        .unwrap()
        .report()
        .outer_iterations;
    assert!(
        vp_outer < rb_outer,
        "VP {vp_outer} outer iterations vs naive RB {rb_outer}"
    );
}
