//! Integration: the `Session` lifecycle — build → solve → batch →
//! transient on one handle — must reproduce the legacy entry points
//! bitwise, refuse geometry drift instead of silently rebuilding, and
//! route multiple backends through the same prefactored state.

// The comparisons deliberately call the deprecated `VpSolver` shims:
// they are the legacy reference the session must match exactly.
#![allow(deprecated)]

use voltprop::solvers::residual;
use voltprop::{
    Backend, DirectCholesky, LoadCase, LoadProfile, LoadSet, NetKind, Rb3d, Session, SessionError,
    SolveParams, Stack3d, StackSolver, VpConfig, VpScratch, VpSolver,
};

fn stack() -> Stack3d {
    Stack3d::builder(12, 12, 3)
        .load_profile(
            LoadProfile::UniformRandom {
                min: 1e-5,
                max: 1e-3,
            },
            23,
        )
        .build()
        .unwrap()
}

/// `k` load vectors derived from the stack's own loads with different
/// magnitudes (so lanes converge along different trajectories).
fn load_sweep(stack: &Stack3d, k: usize) -> Vec<f64> {
    let mut loads = Vec::with_capacity(k * stack.num_nodes());
    for j in 0..k {
        let scale = 0.5 + 0.4 * j as f64;
        loads.extend(stack.loads().iter().map(|l| scale * l));
    }
    loads
}

#[test]
fn full_lifecycle_on_one_session_matches_legacy_paths_bitwise() {
    let stack = stack();
    let nn = stack.num_nodes();
    let config = VpConfig::default();
    let solver = VpSolver::new(config);
    let mut session = Session::build(&stack, config).unwrap();

    // 1. Single solve == legacy solve_with, bitwise.
    let mut scratch = VpScratch::new(&stack, &config).unwrap();
    let legacy_report = solver
        .solve_with(&stack, NetKind::Power, &mut scratch)
        .unwrap();
    let view = session.solve(&LoadCase::new(&stack)).unwrap();
    assert_eq!(view.voltages(), scratch.voltages());
    assert_eq!(view.pillar_currents(), scratch.pillar_currents());
    assert_eq!(*view.report(), legacy_report);

    // 2. Batch == legacy solve_batch, bitwise, on the same session.
    let k = 4;
    let loads = load_sweep(&stack, k);
    let mut reports = Vec::new();
    solver
        .solve_batch(&stack, NetKind::Power, &loads, &mut scratch, &mut reports)
        .unwrap();
    let batch = session.solve_batch(&LoadSet::new(&stack, &loads)).unwrap();
    assert_eq!(batch.lanes(), k);
    for j in 0..k {
        assert_eq!(batch.lane_voltages(j).unwrap(), scratch.batch_voltages(j));
        assert_eq!(
            batch.lane_pillar_currents(j).unwrap(),
            scratch.batch_pillar_currents(j)
        );
        assert_eq!(*batch.lane_report(j).unwrap(), reports[j]);
    }

    // 3. Transient (steps as lanes) == legacy per-step batch, bitwise,
    // still on the same session.
    let steps = 3;
    let wave = load_sweep(&stack, steps);
    solver
        .solve_batch(&stack, NetKind::Power, &wave, &mut scratch, &mut reports)
        .unwrap();
    let transient = session
        .transient(&LoadCase::new(&stack), steps, |s, lane| {
            lane.copy_from_slice(&wave[s * nn..(s + 1) * nn]);
        })
        .unwrap();
    assert!(transient.converged());
    for s in 0..steps {
        assert_eq!(
            transient.lane_voltages(s).unwrap(),
            scratch.batch_voltages(s),
            "step {s}"
        );
    }

    // 4. And a single solve again after all of that — arenas are shared,
    // results must not bleed between request shapes.
    let view = session.solve(&LoadCase::new(&stack)).unwrap();
    assert_eq!(view.voltages(), scratch.voltages());
}

#[test]
fn geometry_drift_errors_instead_of_rebuilding() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let mem = session.memory_bytes();

    // A different footprint, a different tier count, and a different TSV
    // resistance are all geometry changes.
    let other_footprint = Stack3d::builder(10, 10, 3)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    let other_tiers = Stack3d::builder(12, 12, 2)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    let other_r = Stack3d::builder(12, 12, 3)
        .tsv_resistance(0.1)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    // A different rail voltage is geometry too: the Rb3d route bakes it
    // into the prefactored engine at build.
    let other_vdd = Stack3d::builder(12, 12, 3)
        .vdd(1.0)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    // A pad away from the pillars must be caught even though every
    // pillar-site pad flag still matches.
    let mut off_pillar_pads: Vec<(usize, usize)> = stack
        .tsv_sites()
        .iter()
        .map(|&(x, y)| (x as usize, y as usize))
        .collect();
    off_pillar_pads.push((1, 1)); // pitch-2 lattice → odd coords are free
    let other_pads = Stack3d::builder(12, 12, 3)
        .pad_sites(off_pillar_pads)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    for bad in [
        &other_footprint,
        &other_tiers,
        &other_r,
        &other_vdd,
        &other_pads,
    ] {
        assert!(matches!(
            session.solve(&LoadCase::new(bad)),
            Err(SessionError::GeometryChanged { .. })
        ));
        assert!(matches!(
            session.solve_batch(&LoadSet::new(bad, &load_sweep(bad, 2))),
            Err(SessionError::GeometryChanged { .. })
        ));
    }
    // The session is untouched: same memory, still serves its stack.
    assert_eq!(session.memory_bytes(), mem);
    assert!(session.solve(&LoadCase::new(&stack)).is_ok());

    // Loads-only changes are not geometry changes.
    let mut hot = stack.clone();
    hot.set_loads(stack.loads().iter().map(|l| 1.5 * l).collect())
        .unwrap();
    assert!(session.solve(&LoadCase::new(&hot)).is_ok());
}

#[test]
fn mixed_nets_and_tolerances_on_one_session() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();

    let power = session.solve(&LoadCase::new(&stack)).unwrap();
    assert!(power.worst_drop(stack.vdd()) > 0.0);
    let power_mismatch = power.report().pad_mismatch;

    let ground = session
        .solve(&LoadCase::new(&stack).net(NetKind::Ground))
        .unwrap();
    assert!(ground.converged());
    // Ground bounce is positive: voltages near 0, not near VDD.
    assert!(ground.voltages().iter().all(|&v| v < 0.5 * stack.vdd()));

    // A tighter epsilon on the same session must resolve further.
    let tight = session
        .solve(&LoadCase::new(&stack).params(SolveParams::new().epsilon(1e-6)))
        .unwrap();
    assert!(tight.converged());
    assert!(
        tight.report().pad_mismatch < power_mismatch,
        "tight {} vs default {}",
        tight.report().pad_mismatch,
        power_mismatch
    );
}

#[test]
fn rb3d_backend_routes_through_the_same_session() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let rb_params = SolveParams::new()
        .inner_tolerance(1e-7)
        .max_inner_sweeps(200_000);

    // Single solve: bitwise identical to the standalone Rb3d solver.
    let standalone = Rb3d::default().solve_stack(&stack, NetKind::Power).unwrap();
    let routed = session
        .solve(
            &LoadCase::new(&stack)
                .backend(Backend::Rb3d)
                .params(rb_params),
        )
        .unwrap();
    assert_eq!(routed.voltages(), &standalone.voltages[..]);
    assert_eq!(
        routed.report().outer_iterations,
        standalone.report.iterations
    );
    assert!(routed.pillar_currents().is_empty(), "rb3d computes none");

    // Both backends on one session agree with the direct reference.
    let exact = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    let vp = session.solve(&LoadCase::new(&stack)).unwrap();
    let vp_err = residual::max_abs_error(&exact.voltages, vp.voltages());
    assert!(vp_err < 5e-4, "vp {vp_err}");
    let rb = session
        .solve(
            &LoadCase::new(&stack)
                .backend(Backend::Rb3d)
                .params(rb_params),
        )
        .unwrap();
    let rb_err = residual::max_abs_error(&exact.voltages, rb.voltages());
    assert!(rb_err < 5e-4, "rb3d {rb_err}");

    // Batched Rb3d: every lane matches a standalone solve on its loads.
    let loads = load_sweep(&stack, 3);
    let batch = session
        .solve_batch(
            &LoadSet::new(&stack, &loads)
                .backend(Backend::Rb3d)
                .params(rb_params),
        )
        .unwrap();
    assert_eq!(batch.lanes(), 3);
    let nn = stack.num_nodes();
    for j in 0..3 {
        let mut lane_stack = stack.clone();
        lane_stack
            .set_loads(loads[j * nn..(j + 1) * nn].to_vec())
            .unwrap();
        let solo = Rb3d::default()
            .solve_stack(&lane_stack, NetKind::Power)
            .unwrap();
        assert_eq!(
            batch.lane_voltages(j).unwrap(),
            &solo.voltages[..],
            "lane {j}"
        );
    }
}

#[test]
fn pcg_backend_is_declared_but_pending() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    assert!(matches!(
        session.solve(&LoadCase::new(&stack).backend(Backend::Pcg)),
        Err(SessionError::BackendUnavailable {
            backend: Backend::Pcg
        })
    ));
}

#[test]
fn lane_accessors_are_nonpanicking() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let loads = load_sweep(&stack, 2);
    let view = session.solve_batch(&LoadSet::new(&stack, &loads)).unwrap();
    assert!(view.lane_voltages(0).is_ok());
    assert!(view.lane_voltages(1).is_ok());
    for lane in [2usize, 100] {
        assert!(matches!(
            view.lane_voltages(lane),
            Err(SessionError::LaneOutOfRange { lanes: 2, .. })
        ));
        assert!(view.lane_pillar_currents(lane).is_err());
        assert!(view.lane_report(lane).is_err());
        assert!(view.lane_worst_drop(lane, stack.vdd()).is_err());
    }
}

#[test]
fn deprecated_solve_keeps_the_legacy_scratch_usable() {
    // Regression: `VpSolver::solve` used to `mem::take` the voltages out
    // of its scratch; the shim must leave any scratch it touches valid.
    let stack = stack();
    let solver = VpSolver::default();
    let sol = solver.solve(&stack, NetKind::Power).unwrap();
    assert_eq!(sol.voltages.len(), stack.num_nodes());
    // And a scratch reused across solve_with calls after a geometry
    // rebuild stays consistent (the historical failure shape).
    let mut scratch = VpScratch::new(&stack, &solver.config).unwrap();
    solver
        .solve_with(&stack, NetKind::Power, &mut scratch)
        .unwrap();
    assert_eq!(scratch.voltages().len(), stack.num_nodes());
    assert_eq!(scratch.voltages(), &sol.voltages[..]);
}

#[test]
fn transient_rejects_zero_steps_loads() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    assert!(matches!(
        session.transient(&LoadCase::new(&stack), 0, |_, _| {}),
        Err(SessionError::Solver(_))
    ));
}

#[test]
fn malformed_load_sets_are_rejected() {
    let stack = stack();
    let nn = stack.num_nodes();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    for bad in [
        vec![],
        vec![1e-4; nn + 1],
        vec![-1e-4; nn],
        vec![f64::NAN; nn],
    ] {
        for backend in [Backend::VoltProp, Backend::Rb3d] {
            assert!(
                matches!(
                    session.solve_batch(&LoadSet::new(&stack, &bad).backend(backend)),
                    Err(SessionError::Solver(_))
                ),
                "loads of len {} accepted on {backend:?}",
                bad.len()
            );
        }
    }
}
