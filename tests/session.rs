//! Integration: the `Session` lifecycle — build → solve → batch →
//! step sweep on one handle — must be bitwise reproducible (pinned by a
//! saved fixture, replacing the deleted `VpSolver` legacy shims as the
//! reference), refuse geometry drift instead of silently rebuilding, and
//! route all three backends through the same prefactored state.

use std::fmt::Write as _;

use voltprop::solvers::residual;
use voltprop::{
    Backend, DirectCholesky, LoadCase, LoadProfile, LoadSet, NetKind, Pcg, Rb3d, Session,
    SessionError, SolveParams, Stack3d, StackSolver, VpConfig,
};

fn stack() -> Stack3d {
    Stack3d::builder(12, 12, 3)
        .load_profile(
            LoadProfile::UniformRandom {
                min: 1e-5,
                max: 1e-3,
            },
            23,
        )
        .build()
        .unwrap()
}

/// `k` load vectors derived from the stack's own loads with different
/// magnitudes (so lanes converge along different trajectories).
fn load_sweep(stack: &Stack3d, k: usize) -> Vec<f64> {
    let mut loads = Vec::with_capacity(k * stack.num_nodes());
    for j in 0..k {
        let scale = 0.5 + 0.4 * j as f64;
        loads.extend(stack.loads().iter().map(|l| scale * l));
    }
    loads
}

/// `true` when `VOLTPROP_FORCE_PRECISION` overrides every request's
/// precision (the CI forced-mixed pass). Bitwise-pinning assertions
/// compare against the f64 path and must skip under the override.
fn forced_precision() -> bool {
    std::env::var_os("VOLTPROP_FORCE_PRECISION").is_some()
}

/// The saved fixture that pins the session's bitwise behavior across
/// releases. Regenerate deliberately with
/// `VOLTPROP_BLESS=1 cargo test --test session pinned_fixture`.
const FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/session_pinned.txt"
);

#[test]
fn pinned_fixture_guards_bitwise_behavior() {
    // When the deprecated `VpSolver::solve{,_with,_batch}` shims were
    // removed, the "session matches legacy bitwise" comparisons moved
    // here: the exact bit patterns those paths produced (and the session
    // reproduced) are committed as a fixture, so a refactor that
    // perturbs a single ULP anywhere in the solve pipeline fails loudly
    // and must re-bless deliberately.
    if forced_precision() {
        eprintln!("skipping: VOLTPROP_FORCE_PRECISION overrides the f64 path this fixture pins");
        return;
    }
    let stack = stack();
    let nn = stack.num_nodes();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();

    let mut blob: Vec<u64> = Vec::new();
    let section = |name: &str, bits: &mut Vec<u64>, values: &[f64]| {
        assert!(!values.is_empty(), "{name}: empty section");
        bits.extend(values.iter().map(|v| v.to_bits()));
    };

    // 1. Single solve: voltages + pillar currents.
    let view = session.solve(&LoadCase::new(&stack)).unwrap();
    assert!(view.converged());
    section("single voltages", &mut blob, view.voltages());
    section("single pillar currents", &mut blob, view.pillar_currents());

    // 2. Batch of 2 diverging lanes: per-lane voltages + pillar currents.
    let k = 2;
    let loads = load_sweep(&stack, k);
    let batch = session.solve_batch(&LoadSet::new(&stack, &loads)).unwrap();
    assert_eq!(batch.lanes(), k);
    let mut lane_bits: Vec<u64> = Vec::new();
    for j in 0..k {
        section(
            "batch lane voltages",
            &mut lane_bits,
            batch.lane_voltages(j).unwrap(),
        );
        section(
            "batch lane pillar currents",
            &mut lane_bits,
            batch.lane_pillar_currents(j).unwrap(),
        );
    }
    blob.extend_from_slice(&lane_bits);

    // 3. Step-sweeping the same waveform must reproduce the batch
    // lanes bitwise (steps are lanes; no fixture needed for this).
    let transient = session
        .solve_steps(&LoadCase::new(&stack), k, |s, lane| {
            lane.copy_from_slice(&loads[s * nn..(s + 1) * nn]);
        })
        .unwrap();
    let mut transient_bits: Vec<u64> = Vec::new();
    for j in 0..k {
        section(
            "transient lane voltages",
            &mut transient_bits,
            transient.lane_voltages(j).unwrap(),
        );
        section(
            "transient lane pillar currents",
            &mut transient_bits,
            transient.lane_pillar_currents(j).unwrap(),
        );
    }
    assert_eq!(
        transient_bits, lane_bits,
        "transient steps must be bitwise identical to the equivalent batch"
    );

    // 4. Batched lanes are bitwise identical to the corresponding single
    // solves on the same session (the lockstep-freeze contract).
    let mut lane_stack = stack.clone();
    lane_stack.set_loads(loads[..nn].to_vec()).unwrap();
    let solo = session.solve(&LoadCase::new(&lane_stack)).unwrap();
    let solo_bits: Vec<u64> = solo.voltages().iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        solo_bits,
        lane_bits[..nn],
        "batch lane 0 must be bitwise identical to the single solve"
    );

    if std::env::var_os("VOLTPROP_BLESS").is_some() {
        let mut out = String::with_capacity(blob.len() * 17 + 64);
        out.push_str("# session_pinned fixture: f64 bit patterns, one per line.\n");
        out.push_str("# Regenerate: VOLTPROP_BLESS=1 cargo test --test session pinned_fixture\n");
        for bits in &blob {
            writeln!(out, "{bits:016x}").unwrap();
        }
        std::fs::write(FIXTURE_PATH, out).unwrap();
        eprintln!("blessed {} values into {FIXTURE_PATH}", blob.len());
        return;
    }

    let fixture = std::fs::read_to_string(FIXTURE_PATH)
        .expect("fixture missing — run with VOLTPROP_BLESS=1 to generate");
    let expected: Vec<u64> = fixture
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| u64::from_str_radix(l, 16).expect("malformed fixture line"))
        .collect();
    assert_eq!(
        expected.len(),
        blob.len(),
        "fixture length drifted — re-bless deliberately if intended"
    );
    let mismatches = expected.iter().zip(&blob).filter(|(a, b)| a != b).count();
    assert_eq!(
        mismatches,
        0,
        "{mismatches}/{} pinned values drifted bitwise — re-bless deliberately if intended",
        blob.len()
    );
}

#[test]
fn geometry_drift_errors_instead_of_rebuilding() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let mem = session.memory_bytes();

    // A different footprint, a different tier count, and a different TSV
    // resistance are all geometry changes.
    let other_footprint = Stack3d::builder(10, 10, 3)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    let other_tiers = Stack3d::builder(12, 12, 2)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    let other_r = Stack3d::builder(12, 12, 3)
        .tsv_resistance(0.1)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    // A different rail voltage is geometry too: the Rb3d route bakes it
    // into the prefactored engine at build.
    let other_vdd = Stack3d::builder(12, 12, 3)
        .vdd(1.0)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    // A pad away from the pillars must be caught even though every
    // pillar-site pad flag still matches.
    let mut off_pillar_pads: Vec<(usize, usize)> = stack
        .tsv_sites()
        .iter()
        .map(|&(x, y)| (x as usize, y as usize))
        .collect();
    off_pillar_pads.push((1, 1)); // pitch-2 lattice → odd coords are free
    let other_pads = Stack3d::builder(12, 12, 3)
        .pad_sites(off_pillar_pads)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    for bad in [
        &other_footprint,
        &other_tiers,
        &other_r,
        &other_vdd,
        &other_pads,
    ] {
        assert!(matches!(
            session.solve(&LoadCase::new(bad)),
            Err(SessionError::GeometryChanged { .. })
        ));
        assert!(matches!(
            session.solve_batch(&LoadSet::new(bad, &load_sweep(bad, 2))),
            Err(SessionError::GeometryChanged { .. })
        ));
    }
    // The session is untouched: same memory, still serves its stack.
    assert_eq!(session.memory_bytes(), mem);
    assert!(session.solve(&LoadCase::new(&stack)).is_ok());

    // Loads-only changes are not geometry changes.
    let mut hot = stack.clone();
    hot.set_loads(stack.loads().iter().map(|l| 1.5 * l).collect())
        .unwrap();
    assert!(session.solve(&LoadCase::new(&hot)).is_ok());
}

#[test]
fn mixed_nets_and_tolerances_on_one_session() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();

    let power = session.solve(&LoadCase::new(&stack)).unwrap();
    assert!(power.worst_drop(stack.vdd()) > 0.0);
    let power_mismatch = power.report().pad_mismatch;

    let ground = session
        .solve(&LoadCase::new(&stack).net(NetKind::Ground))
        .unwrap();
    assert!(ground.converged());
    // Ground bounce is positive: voltages near 0, not near VDD.
    assert!(ground.voltages().iter().all(|&v| v < 0.5 * stack.vdd()));

    // A tighter epsilon on the same session must resolve further.
    let tight = session
        .solve(&LoadCase::new(&stack).params(SolveParams::new().epsilon(1e-6)))
        .unwrap();
    assert!(tight.converged());
    assert!(
        tight.report().pad_mismatch < power_mismatch,
        "tight {} vs default {}",
        tight.report().pad_mismatch,
        power_mismatch
    );
}

#[test]
fn rb3d_backend_routes_through_the_same_session() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let rb_params = SolveParams::new()
        .inner_tolerance(1e-7)
        .max_inner_sweeps(200_000);

    // Single solve: bitwise identical to the standalone Rb3d solver.
    let standalone = Rb3d::default().solve_stack(&stack, NetKind::Power).unwrap();
    let routed = session
        .solve(
            &LoadCase::new(&stack)
                .backend(Backend::Rb3d)
                .params(rb_params),
        )
        .unwrap();
    assert_eq!(routed.voltages(), &standalone.voltages[..]);
    assert_eq!(
        routed.report().outer_iterations,
        standalone.report.iterations
    );
    assert!(routed.pillar_currents().is_empty(), "rb3d computes none");

    // Both backends on one session agree with the direct reference.
    let exact = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    let vp = session.solve(&LoadCase::new(&stack)).unwrap();
    let vp_err = residual::max_abs_error(&exact.voltages, vp.voltages());
    assert!(vp_err < 5e-4, "vp {vp_err}");
    let rb = session
        .solve(
            &LoadCase::new(&stack)
                .backend(Backend::Rb3d)
                .params(rb_params),
        )
        .unwrap();
    let rb_err = residual::max_abs_error(&exact.voltages, rb.voltages());
    assert!(rb_err < 5e-4, "rb3d {rb_err}");

    // Batched Rb3d: every lane matches a standalone solve on its loads.
    let loads = load_sweep(&stack, 3);
    let batch = session
        .solve_batch(
            &LoadSet::new(&stack, &loads)
                .backend(Backend::Rb3d)
                .params(rb_params),
        )
        .unwrap();
    assert_eq!(batch.lanes(), 3);
    let nn = stack.num_nodes();
    for j in 0..3 {
        let mut lane_stack = stack.clone();
        lane_stack
            .set_loads(loads[j * nn..(j + 1) * nn].to_vec())
            .unwrap();
        let solo = Rb3d::default()
            .solve_stack(&lane_stack, NetKind::Power)
            .unwrap();
        assert_eq!(
            batch.lane_voltages(j).unwrap(),
            &solo.voltages[..],
            "lane {j}"
        );
    }
}

#[test]
fn pcg_backend_routes_through_the_same_session() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let pcg_params = SolveParams::new()
        .inner_tolerance(1e-8)
        .max_inner_sweeps(50_000);

    // Single solve: agrees with the standalone Pcg solver (same IC(0)
    // preconditioner, same tolerance) and with the direct reference. The
    // standalone solver always runs the f64 path, so under a forced
    // mixed-precision override the comparison loosens from near-bitwise
    // to the shared accuracy budget.
    let tight = if forced_precision() { 5e-4 } else { 1e-9 };
    let standalone = Pcg::default().solve_stack(&stack, NetKind::Power).unwrap();
    let routed = session
        .solve(
            &LoadCase::new(&stack)
                .backend(Backend::Pcg)
                .params(pcg_params),
        )
        .unwrap();
    assert!(routed.converged());
    assert!(routed.pillar_currents().is_empty(), "pcg computes none");
    let drift = residual::max_abs_error(&standalone.voltages, routed.voltages());
    assert!(drift < tight, "session pcg vs standalone drift {drift}");
    let exact = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    let err = residual::max_abs_error(&exact.voltages, routed.voltages());
    assert!(err < 5e-4, "pcg vs direct {err}");
    // The report carries CG iterations and the relative residual.
    assert!(routed.report().outer_iterations > 0);
    assert!(routed.report().pad_mismatch <= 1e-8);

    // Ground net through the same prefactored engine (shared matrix).
    let ground = session
        .solve(
            &LoadCase::new(&stack)
                .net(NetKind::Ground)
                .backend(Backend::Pcg)
                .params(pcg_params),
        )
        .unwrap();
    let exact_gnd = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Ground)
        .unwrap();
    let gnd_err = residual::max_abs_error(&exact_gnd.voltages, ground.voltages());
    assert!(gnd_err < 5e-4, "pcg ground vs direct {gnd_err}");

    // Batched Pcg: every lane matches a standalone solve on its loads.
    let loads = load_sweep(&stack, 3);
    let batch = session
        .solve_batch(
            &LoadSet::new(&stack, &loads)
                .backend(Backend::Pcg)
                .params(pcg_params),
        )
        .unwrap();
    assert_eq!(batch.lanes(), 3);
    assert!(batch.converged());
    let nn = stack.num_nodes();
    for j in 0..3 {
        let mut lane_stack = stack.clone();
        lane_stack
            .set_loads(loads[j * nn..(j + 1) * nn].to_vec())
            .unwrap();
        let solo = Pcg::default()
            .solve_stack(&lane_stack, NetKind::Power)
            .unwrap();
        let lane_drift = residual::max_abs_error(&solo.voltages, batch.lane_voltages(j).unwrap());
        assert!(lane_drift < tight, "lane {j} drift {lane_drift}");
    }

    // Step sweeps route through the same per-lane engine path.
    let transient = session
        .solve_steps(
            &LoadCase::new(&stack)
                .backend(Backend::Pcg)
                .params(pcg_params),
            2,
            |s, lane| lane.copy_from_slice(&loads[s * nn..(s + 1) * nn]),
        )
        .unwrap();
    assert_eq!(transient.lanes(), 2);
    assert!(transient.converged());

    // A starved iteration budget freezes the lane with its true residual
    // instead of failing the batch (mirroring the other backends).
    let starved = session
        .solve_batch(
            &LoadSet::new(&stack, &loads).backend(Backend::Pcg).params(
                SolveParams::new()
                    .inner_tolerance(1e-14)
                    .max_inner_sweeps(1),
            ),
        )
        .unwrap();
    for j in 0..starved.lanes() {
        let rep = starved.lane_report(j).unwrap();
        assert!(!rep.converged, "lane {j}");
        assert!(rep.pad_mismatch > 1e-14, "lane {j}: {}", rep.pad_mismatch);
    }
}

#[test]
fn solve_steps_rejects_zero_steps_loads() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    assert!(matches!(
        session.solve_steps(&LoadCase::new(&stack), 0, |_, _| {}),
        Err(SessionError::Solver(_))
    ));
}

#[test]
fn lane_accessors_are_nonpanicking() {
    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let loads = load_sweep(&stack, 2);
    let view = session.solve_batch(&LoadSet::new(&stack, &loads)).unwrap();
    assert!(view.lane_voltages(0).is_ok());
    assert!(view.lane_voltages(1).is_ok());
    for lane in [2usize, 100] {
        assert!(matches!(
            view.lane_voltages(lane),
            Err(SessionError::LaneOutOfRange { lanes: 2, .. })
        ));
        assert!(view.lane_pillar_currents(lane).is_err());
        assert!(view.lane_report(lane).is_err());
        assert!(view.lane_worst_drop(lane, stack.vdd()).is_err());
    }
}

#[test]
fn malformed_load_sets_are_rejected() {
    let stack = stack();
    let nn = stack.num_nodes();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    for bad in [
        vec![],
        vec![1e-4; nn + 1],
        vec![-1e-4; nn],
        vec![f64::NAN; nn],
    ] {
        for backend in [Backend::VoltProp, Backend::Rb3d, Backend::Pcg] {
            assert!(
                matches!(
                    session.solve_batch(&LoadSet::new(&stack, &bad).backend(backend)),
                    Err(SessionError::Solver(_))
                ),
                "loads of len {} accepted on {backend:?}",
                bad.len()
            );
        }
    }
}

#[test]
fn budget_starved_solves_report_deadline_exceeded() {
    use std::time::Duration;
    use voltprop::{Deadline, SolverError};

    let stack = stack();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    // Unattainable outer tolerance (with the inner one pinned attainable
    // so every inner solve succeeds, f64 or forced-mixed) + an iteration
    // budget too large to exhaust: only the deadline can end this solve.
    let starved = SolveParams::new()
        .epsilon(1e-300)
        .inner_tolerance(1e-5)
        .max_outer_iterations(1_000_000_000);
    let case = LoadCase::new(&stack)
        .params(starved)
        .deadline(Deadline::after(Duration::from_millis(50)));
    assert!(matches!(
        session.solve(&case),
        Err(SessionError::Solver(SolverError::DeadlineExceeded { .. }))
    ));
    // Batches spend from the same budget, per lane.
    let loads = load_sweep(&stack, 2);
    let set = LoadSet::new(&stack, &loads)
        .params(starved)
        .deadline(Deadline::after(Duration::from_millis(50)));
    assert!(matches!(
        session.solve_batch(&set),
        Err(SessionError::Solver(SolverError::DeadlineExceeded { .. }))
    ));
    // An already-expired deadline sheds before any work happens…
    assert!(matches!(
        session.solve(&LoadCase::new(&stack).deadline(Deadline::after(Duration::ZERO))),
        Err(SessionError::Solver(SolverError::DeadlineExceeded { .. }))
    ));
    // …and the session survives shed solves: a sane request still works.
    assert!(session.solve(&LoadCase::new(&stack)).unwrap().converged());
}
