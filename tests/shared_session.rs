//! Concurrency determinism: N threads solving disjoint load cases on one
//! `SharedSession` must produce voltages **bitwise identical** to the
//! same cases solved sequentially on a plain `Session`, across all three
//! backends and both precisions.
//!
//! The pool is built with fewer slots than threads, so the run also
//! exercises admission control (some threads block in checkout) — which
//! must not perturb the numerics either.

use voltprop::{
    Backend, LoadCase, LoadProfile, Precision, Session, SharedSession, SolveParams, Stack3d,
    TsvPattern, VpConfig,
};

/// More threads than pool slots, and at least the 4 the acceptance
/// criteria require.
const THREADS: usize = 8;
const SLOTS: usize = 4;

/// One geometry, many load vectors: every seed yields the same grid with
/// a different per-node draw pattern, so all cases share one session.
fn case_stack(seed: u64) -> Stack3d {
    Stack3d::builder(12, 12, 3)
        .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
        .load_profile(
            LoadProfile::UniformRandom {
                min: 5e-5,
                max: 2e-3,
            },
            seed,
        )
        .build()
        .expect("stack builds")
}

fn assert_bitwise(expected: &[Vec<f64>], got: &[Vec<f64>], what: &str) {
    assert_eq!(expected.len(), got.len());
    for (case, (e, g)) in expected.iter().zip(got).enumerate() {
        assert_eq!(e.len(), g.len(), "{what} case {case}: length mismatch");
        for (node, (a, b)) in e.iter().zip(g).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{what} case {case} node {node}: sequential {a:e} != concurrent {b:e}"
            );
        }
    }
}

/// Sequential reference on a plain `Session`, then the same cases fanned
/// out over `THREADS` scoped threads on a `SharedSession`.
fn run_determinism(backend_of: impl Fn(usize) -> Backend + Sync, precision: Precision) {
    let stacks: Vec<Stack3d> = (0..THREADS as u64).map(case_stack).collect();
    let params = SolveParams::new().precision(precision);

    let mut session = Session::build(&stacks[0], VpConfig::default()).expect("session builds");
    let expected: Vec<Vec<f64>> = stacks
        .iter()
        .enumerate()
        .map(|(i, stack)| {
            let case = LoadCase::new(stack).backend(backend_of(i)).params(params);
            session
                .solve(&case)
                .expect("sequential solve succeeds")
                .voltages()
                .to_vec()
        })
        .collect();

    let shared =
        SharedSession::build(&stacks[0], VpConfig::default(), SLOTS).expect("shared builds");
    let got: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = stacks
            .iter()
            .enumerate()
            .map(|(i, stack)| {
                let shared = &shared;
                let backend_of = &backend_of;
                scope.spawn(move || {
                    let case = LoadCase::new(stack).backend(backend_of(i)).params(params);
                    let solution = shared.solve(&case).expect("concurrent solve succeeds");
                    solution.view().voltages().to_vec()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver thread does not panic"))
            .collect()
    });

    assert_bitwise(&expected, &got, &format!("{precision:?}"));
    assert_eq!(
        shared.available(),
        SLOTS,
        "all scratch slots returned to the pool"
    );
}

#[test]
fn voltprop_backend_is_bitwise_deterministic_f64() {
    run_determinism(|_| Backend::VoltProp, Precision::F64);
}

#[test]
fn voltprop_backend_is_bitwise_deterministic_mixedf32() {
    run_determinism(|_| Backend::VoltProp, Precision::MixedF32);
}

#[test]
fn rb3d_backend_is_bitwise_deterministic_f64() {
    run_determinism(|_| Backend::Rb3d, Precision::F64);
}

#[test]
fn rb3d_backend_is_bitwise_deterministic_mixedf32() {
    run_determinism(|_| Backend::Rb3d, Precision::MixedF32);
}

#[test]
fn pcg_backend_is_bitwise_deterministic_f64() {
    run_determinism(|_| Backend::Pcg, Precision::F64);
}

#[test]
fn pcg_backend_is_bitwise_deterministic_mixedf32() {
    run_determinism(|_| Backend::Pcg, Precision::MixedF32);
}

/// Threads cycling through *different* backends on one shared session:
/// backend routing is per-request state in the scratch, so interleaving
/// must not cross-contaminate results.
#[test]
fn interleaved_backends_stay_bitwise_deterministic() {
    let rotation = [Backend::VoltProp, Backend::Rb3d, Backend::Pcg];
    run_determinism(|i| rotation[i % rotation.len()], Precision::F64);
}
