//! Wire-protocol contract of `voltprop-serve`:
//!
//! * golden request/response JSON round-trips (member set, order, and
//!   byte-stable re-encoding are pinned);
//! * malformed requests produce typed error responses on a connection
//!   that stays open — never a panic or a drop;
//! * registry behavior on a geometry-hash miss is pinned for both build
//!   policies: the default builds and caches, `"build":"reject"`
//!   returns `geometry-not-cached`.

use voltprop_serve::json::Json;
use voltprop_serve::{request, serve, Client, ServeConfig};

const STACK_A: &str = r#""stack":{"width":8,"height":8,"tiers":2,"tsv_pitch":2,"loads":1e-4}"#;
const STACK_B: &str = r#""stack":{"width":8,"height":8,"tiers":3,"tsv_pitch":2,"loads":1e-4}"#;

fn start() -> voltprop_serve::ServerHandle {
    serve(
        "127.0.0.1:0",
        ServeConfig {
            slots: 2,
            parallelism: 1,
            ..ServeConfig::default()
        },
    )
    .expect("daemon binds an ephemeral port")
}

#[test]
fn golden_ping_and_info_responses() {
    let server = start();
    // Byte-exact golden line for the simplest op.
    let pong = request(server.addr(), r#"{"op":"ping"}"#).unwrap();
    assert_eq!(pong, r#"{"ok":true,"pong":true}"#);

    let info = Json::parse(&request(server.addr(), r#"{"op":"info"}"#).unwrap()).unwrap();
    assert_eq!(info.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(info.get("protocol").and_then(Json::as_usize), Some(1));
    assert_eq!(info.get("sessions").and_then(Json::as_usize), Some(0));
    assert_eq!(info.get("slots").and_then(Json::as_usize), Some(2));
}

#[test]
fn golden_solve_response_roundtrip() {
    let server = start();
    let reply = request(server.addr(), &format!(r#"{{"op":"solve",{STACK_A}}}"#)).unwrap();
    let value = Json::parse(&reply).expect("response is one JSON object");

    // The member set and order are part of the protocol contract.
    let Json::Obj(members) = &value else {
        panic!("response is not an object: {reply}");
    };
    let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "ok",
            "geometry",
            "cached",
            "backend",
            "converged",
            "iterations",
            "sweeps",
            "residual",
            "nodes",
            "worst_drop"
        ]
    );
    assert_eq!(value.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(value.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(
        value.get("backend").and_then(Json::as_str),
        Some("voltprop")
    );
    assert_eq!(value.get("converged").and_then(Json::as_bool), Some(true));
    assert_eq!(value.get("nodes").and_then(Json::as_usize), Some(8 * 8 * 2));
    let geometry = value.get("geometry").and_then(Json::as_str).unwrap();
    assert_eq!(geometry.len(), 16, "geometry hash is 16 hex chars");

    // Parse → re-encode is byte-identical: the wire format is stable.
    assert_eq!(value.to_string(), reply);

    // The same geometry with different loads reuses the cached session
    // and reports the same hash.
    let second = Json::parse(
        &request(
            server.addr(),
            r#"{"op":"solve","stack":{"width":8,"height":8,"tiers":2,"tsv_pitch":2,"loads":3e-4},"voltages":true}"#,
        )
        .unwrap(),
    )
    .unwrap();
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        second.get("geometry").and_then(Json::as_str),
        Some(geometry)
    );
    let voltages = second.get("voltages").and_then(Json::as_arr).unwrap();
    assert_eq!(voltages.len(), 8 * 8 * 2, "full per-node voltage vector");
    assert!(voltages.iter().all(|v| v.as_f64().is_some()));
}

#[test]
fn malformed_requests_get_typed_errors_without_connection_drop() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();

    let cases: &[(&str, &str)] = &[
        ("this is not json", "malformed-request"),
        ("[1,2,3]", "malformed-request"),
        (r#"{"op":"explode"}"#, "bad-request"),
        (r#"{"op":"solve"}"#, "bad-request"),
        (
            r#"{"op":"solve","stack":{"width":8,"height":8,"tiers":2,"loads":[1,2,3]}}"#,
            "bad-request",
        ),
        (
            r#"{"op":"solve","stack":{"width":8,"height":8,"tiers":2,"loads":1e-4},"backend":"quantum"}"#,
            "bad-request",
        ),
    ];
    for (line, kind) in cases {
        let reply = client
            .request(line)
            .expect("connection survives a malformed request");
        let value = Json::parse(&reply).expect("error response is valid JSON");
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some(*kind),
            "for request {line:?}"
        );
        let message = value
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(!message.is_empty());
    }

    // The same connection still serves valid requests afterwards.
    let pong = client.request(r#"{"op":"ping"}"#).unwrap();
    assert_eq!(pong, r#"{"ok":true,"pong":true}"#);
}

#[test]
fn geometry_miss_policy_is_pinned_reject_vs_rebuild() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();

    // 1. Cold registry + "build":"reject" → typed geometry-not-cached.
    let rejected = Json::parse(
        &client
            .request(&format!(r#"{{"op":"solve",{STACK_A},"build":"reject"}}"#))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(rejected.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        rejected
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("geometry-not-cached")
    );

    // 2. Default policy → builds and caches.
    let built = Json::parse(
        &client
            .request(&format!(r#"{{"op":"solve",{STACK_A}}}"#))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(built.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(built.get("cached").and_then(Json::as_bool), Some(false));

    // 3. Now "reject" succeeds against the cached entry.
    let warm = Json::parse(
        &client
            .request(&format!(r#"{{"op":"solve",{STACK_A},"build":"reject"}}"#))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(warm.get("cached").and_then(Json::as_bool), Some(true));

    // 4. A *different* geometry still misses under "reject"…
    let other = Json::parse(
        &client
            .request(&format!(r#"{{"op":"solve",{STACK_B},"build":"reject"}}"#))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        other
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("geometry-not-cached")
    );

    // …and builds its own registry entry under the default policy.
    let other_built = Json::parse(
        &client
            .request(&format!(r#"{{"op":"solve",{STACK_B}}}"#))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(other_built.get("ok").and_then(Json::as_bool), Some(true));
    assert_ne!(
        other_built.get("geometry").and_then(Json::as_str),
        built.get("geometry").and_then(Json::as_str),
        "distinct geometries hash to distinct registry keys"
    );

    let info = Json::parse(&client.request(r#"{"op":"info"}"#).unwrap()).unwrap();
    assert_eq!(info.get("sessions").and_then(Json::as_usize), Some(2));
}

#[test]
fn concurrent_clients_share_one_cached_session() {
    let server = start();
    let addr = server.addr();
    // Warm the registry once so every thread hits the cached session.
    let first =
        Json::parse(&request(addr, &format!(r#"{{"op":"solve",{STACK_A}}}"#)).unwrap()).unwrap();
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));

    let failures: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|c| {
                scope.spawn(move || -> Result<(), String> {
                    let mut client =
                        Client::connect(addr).map_err(|e| format!("client {c}: {e}"))?;
                    for i in 0..3 {
                        let line = format!(
                            r#"{{"op":"solve","stack":{{"width":8,"height":8,"tiers":2,"tsv_pitch":2,"loads":{}}}}}"#,
                            1e-4 * (c * 3 + i + 1) as f64
                        );
                        let reply =
                            client.request(&line).map_err(|e| format!("client {c}: {e}"))?;
                        let value = Json::parse(&reply)
                            .map_err(|e| format!("client {c} reply unparsable: {e}"))?;
                        if value.get("ok").and_then(Json::as_bool) != Some(true)
                            || value.get("cached").and_then(Json::as_bool) != Some(true)
                        {
                            return Err(format!("client {c} bad reply: {reply}"));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                Ok(Ok(())) => None,
                Ok(Err(what)) => Some(what),
                Err(_) => Some("client thread panicked".to_string()),
            })
            .collect()
    });
    assert!(failures.is_empty(), "{failures:?}");

    let info = Json::parse(&request(addr, r#"{"op":"info"}"#).unwrap()).unwrap();
    assert_eq!(
        info.get("sessions").and_then(Json::as_usize),
        Some(1),
        "12 concurrent solves of one geometry share one session"
    );
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let mut server = start();
    let bye = request(server.addr(), r#"{"op":"shutdown"}"#).unwrap();
    assert_eq!(bye, r#"{"ok":true,"stopping":true}"#);
    // Joins the accept loop and all handlers; must not hang.
    server.shutdown();
    // A fresh connection is no longer served a response (a connect that
    // fails outright — listener already gone — is equally fine).
    if let Ok(mut client) = Client::connect(server.addr()) {
        assert!(client.request(r#"{"op":"ping"}"#).is_err());
    }
}
