//! Public-API snapshot: name-checks the exported surface of the
//! `voltprop` facade so an accidental removal or signature change in a
//! future PR fails here first, with an explicit diff to acknowledge.
//!
//! Two layers of protection:
//!
//! * the `use` block below fails to compile if any listed item
//!   disappears from the facade root;
//! * the function-pointer bindings fail to compile if a checked
//!   signature drifts.
//!
//! When an intentional API change lands, update this file in the same
//! PR — that is the acknowledgement.

#![allow(unused_imports, clippy::no_effect_underscore_binding)]

// --- The facade root surface -------------------------------------------
use voltprop::{
    // Session API (the primary entry point).
    Backend,
    BuildError,
    BuildParams,
    // Cross-solver layer.
    ConjugateGradient,
    Deadline,
    DirectCholesky,
    // Transient engine (waveform sources, sinks, companion stepping).
    FnWaveform,
    // Grid modeling.
    GridError,
    Integrator,
    LaneReport,
    LinearSolver,
    LoadCase,
    LoadProfile,
    LoadSet,
    NetKind,
    Netlist,
    NetlistCircuit,
    Pcg,
    PcgEngine,
    PrecondKind,
    PwlWaveform,
    RandomWalkSolver,
    Rb3d,
    Rb3dEngine,
    ScaledWaveform,
    Session,
    SessionCore,
    SessionError,
    // Row-band sharding (new this release): the partition descriptor is
    // public; `BuildParams::shards` turns it on through `Session::build`.
    ShardBand,
    ShardPlan,
    SharedSession,
    SharedSolution,
    SolutionView,
    SolveParams,
    SolveReport,
    SolveScratch,
    SolverError,
    Stack3d,
    StackSolution,
    StackSolver,
    StampedSystem,
    SynthConfig,
    TableCircuit,
    TraceSink,
    TransientParams,
    TransientReport,
    TransientSink,
    TryCheckout,
    TsvPattern,
    // Core solver types. (The deprecated `VpSolver::solve{,_with,_batch}`
    // shims, `VpScratch`, and `VpSolution` were removed in this release —
    // `Session` is the solve entry point; `VpSolver` remains as the
    // `StackSolver` trait-object form of the method.)
    VpConfig,
    VpReport,
    VpSolver,
    Waveform,
};

// Sub-crate facades.
use voltprop::{core, grid, solvers, sparse};

#[test]
fn session_api_signatures_hold() {
    // The tentpole contract, checked by *using* every entry point with
    // the exact shapes the docs promise — a signature change breaks the
    // build of this test.
    let stack: Stack3d = Stack3d::builder(8, 8, 2)
        .uniform_load(1e-4)
        .build()
        .unwrap();
    let built: Result<Session, BuildError> = Session::build(&stack, VpConfig::default());
    let mut session: Session = built.unwrap();
    let serves: bool = session.serves(&stack);
    assert!(serves);
    let _mem: usize = session.memory_bytes();
    let _defaults: SolveParams = session.defaults();
    let _bp: BuildParams = session.build_params();

    // Request builders (deadlines ride on both request types).
    let case: LoadCase<'_> = LoadCase::new(&stack)
        .net(NetKind::Power)
        .backend(Backend::VoltProp)
        .params(SolveParams::new().epsilon(1e-4))
        .deadline(Deadline::NONE);
    let loads: Vec<f64> = stack.loads().to_vec();
    let set: LoadSet<'_> = LoadSet::new(&stack, &loads)
        .net(NetKind::Power)
        .backend(Backend::VoltProp)
        .params(SolveParams::new())
        .deadline(Deadline::after(std::time::Duration::from_secs(3600)));

    // The Deadline surface itself.
    let dl: Deadline = Deadline::after(std::time::Duration::from_millis(5));
    let _instant: Option<std::time::Instant> = dl.instant();
    let _expired: bool = dl.expired();
    let _left: Option<std::time::Duration> = dl.remaining();
    let _check: Result<(), SolverError> = Deadline::NONE.check(0);

    // One request/response surface: single, batch, transient.
    {
        let single: Result<SolutionView<'_>, SessionError> = session.solve(&case);
        let view: SolutionView<'_> = single.unwrap();
        let _lanes: usize = view.lanes();
        let _ok: bool = view.converged();
        let _v: &[f64] = view.voltages();
        let _r: &VpReport = view.report();
        let _wd: f64 = view.worst_drop(stack.vdd());
        // Non-panicking lane accessors (replacing the deprecated
        // panicking scratch accessors).
        let _lv: Result<&[f64], SessionError> = view.lane_voltages(0);
        let _lp: Result<&[f64], SessionError> = view.lane_pillar_currents(0);
        let _lr: Result<&VpReport, SessionError> = view.lane_report(0);
        let _lw: Result<f64, SessionError> = view.lane_worst_drop(0, stack.vdd());
    }
    {
        let batch: Result<SolutionView<'_>, SessionError> = session.solve_batch(&set);
        assert_eq!(batch.unwrap().lanes(), 1);
    }
    {
        // Quasi-static stepping. The deprecated `Session::transient`
        // forwarding shim was removed this release after its scheduled
        // one-release grace period; `solve_steps` is the only name.
        let tr: Result<SolutionView<'_>, SessionError> =
            session.solve_steps(&case, 2, |_s: usize, lane: &mut [f64]| {
                lane.copy_from_slice(&loads);
            });
        assert_eq!(tr.unwrap().lanes(), 2);
    }
    {
        // The true transient engine: streaming waveform in, streaming
        // sink out, companion models prefactored once per step size.
        let h: f64 = 1e-10;
        let mut wave: PwlWaveform = PwlWaveform::new(loads.clone(), 4, h)
            .breakpoint(0.0, 0.0)
            .breakpoint(2.0 * h, 1.0);
        let _steps: usize = wave.steps();
        let mut fnwave: FnWaveform<_> = FnWaveform::new(4, |_s: usize, _t: f64, l: &mut [f64]| {
            l.fill(1e-4);
        });
        let mut scaled: ScaledWaveform = ScaledWaveform::new(loads.clone(), [0.5, 1.0]);
        let mut sink: TraceSink = TraceSink::with_capacity(4, stack.num_nodes());
        let request: TransientParams<'_> = TransientParams::new(&stack, h)
            .integrator(Integrator::Trapezoidal)
            .net(NetKind::Power)
            .backend(Backend::VoltProp)
            .params(SolveParams::new())
            .deadline(Deadline::NONE)
            .refactor_each_step(false);
        let _h: f64 = request.step_size();
        let rep: Result<TransientReport, SessionError> =
            session.transient_dynamic(&mut wave, &mut sink, &request);
        let rep: TransientReport = rep.unwrap();
        let _steps_run: usize = rep.steps;
        let _refactors: usize = rep.refactors;
        let _iters: usize = rep.solver_iterations;
        let _bytes: usize = rep.workspace_bytes;
        let _times: &[f64] = sink.times();
        let _vals: &[f64] = sink.step_values(0);
        // Closure sinks and the other waveform shapes serve too.
        let mut last = 0.0f64;
        let mut closure_sink = |_s: usize, t: f64, _v: &[f64]| last = t;
        session
            .transient_dynamic(&mut fnwave, &mut closure_sink, &request)
            .unwrap();
        session
            .transient_dynamic(&mut scaled, &mut closure_sink, &request)
            .unwrap();
        assert!(last > 0.0);
        // Observation restricts what streams to the sink.
        let watch: [usize; 2] = [0, stack.num_nodes() - 1];
        let narrow: TransientParams<'_> = TransientParams::new(&stack, h).observe(&watch);
        let mut narrow_sink = |_s: usize, _t: f64, v: &[f64]| assert_eq!(v.len(), 2);
        session
            .transient_dynamic(&mut fnwave, &mut narrow_sink, &narrow)
            .unwrap();
    }

    // Config split, including the build-time sharding knob (new this
    // release; see `BuildParams::shards` for the determinism contract).
    let bp: BuildParams = VpConfig::default().build_params();
    let sp: SolveParams = VpConfig::default().solve_params();
    let _join: VpConfig = VpConfig::from_parts(bp, sp);
    let sharded_cfg: VpConfig = VpConfig::new().parallelism(2).shards(2);
    let _shards: usize = sharded_cfg.build_params().shards;
    let _bp_sharded: BuildParams = BuildParams::new().parallelism(2).shards(4);

    // Backend routing covers at least these variants.
    let _backends = [Backend::VoltProp, Backend::Rb3d, Backend::Pcg];

    // Prefactored Rb3d engine (the cross-backend substrate), plain and
    // row-band sharded.
    let rb: Result<Rb3dEngine, SolverError> = Rb3dEngine::build(&stack, 1);
    let mut rb: Rb3dEngine = rb.unwrap();
    let mut v = vec![0.0; rb.num_nodes()];
    let _rb_rep: Result<SolveReport, SolverError> =
        rb.solve(stack.loads(), NetKind::Power, 1.0, 1e-7, 200_000, &mut v);
    let _rb_sharded: Result<Rb3dEngine, SolverError> = Rb3dEngine::build_sharded(&stack, 1, 2);

    // Prefactored PCG engine (the reference backend's substrate).
    let pe: Result<PcgEngine, SolverError> = PcgEngine::build(&stack);
    let mut pe: PcgEngine = pe.unwrap();
    let _dim: usize = pe.dim();
    let _name: &'static str = pe.precond_name();
    let mut pv = vec![0.0; pe.num_nodes()];
    let _pe_rep: Result<SolveReport, SolverError> =
        pe.solve(stack.loads(), NetKind::Power, 1e-8, 50_000, &mut pv);

    // The Pcg backend routes through the same session surface, and a
    // backend whose prefactor failed reports a reasoned unavailability.
    {
        let routed: Result<SolutionView<'_>, SessionError> = session.solve(
            &LoadCase::new(&stack).backend(Backend::Pcg).params(
                SolveParams::new()
                    .inner_tolerance(1e-8)
                    .max_inner_sweeps(50_000),
            ),
        );
        assert!(routed.is_ok());
    }
    {
        // `BackendUnavailable` carries the build-time reason.
        let err = SessionError::BackendUnavailable {
            backend: Backend::Pcg,
            reason: "build-time PCG prefactor failed".into(),
        };
        if let SessionError::BackendUnavailable { backend, reason } = err {
            let _b: Backend = backend;
            let _r: String = reason;
        }
    }
}

#[test]
fn shared_session_api_signatures_hold() {
    use std::sync::Arc;

    let stack: Stack3d = Stack3d::builder(8, 8, 2)
        .uniform_load(1e-4)
        .build()
        .unwrap();

    // The frozen-core / scratch split behind every session handle.
    let core: Result<SessionCore, BuildError> = SessionCore::build(&stack, VpConfig::default());
    let core: Arc<SessionCore> = Arc::new(core.unwrap());
    let _nn: usize = core.num_nodes();
    let _mem: usize = core.memory_bytes();
    let _bp: BuildParams = core.build_params();
    let _sp: SolveParams = core.defaults();
    assert!(core.serves(&stack));
    let scratch: SolveScratch = core.new_scratch();
    let _smem: usize = scratch.memory_bytes();

    // A plain Session is a thin wrapper over one core + one scratch.
    let session: Session = Session::from_core(Arc::clone(&core));
    let _core_ref: &Arc<SessionCore> = session.core();

    // SharedSession: `&self` solves from a bounded checkout pool.
    let built: Result<SharedSession, BuildError> =
        SharedSession::build(&stack, VpConfig::default(), 2);
    drop(built.unwrap());
    let shared: SharedSession = SharedSession::from_core(core, 2);
    let _slots: usize = shared.slots();
    let _avail: usize = shared.available();
    let _live: usize = shared.in_flight();
    let _bytes: usize = shared.memory_bytes();
    assert!(shared.serves(&stack));

    let case: LoadCase<'_> = LoadCase::new(&stack);
    {
        let solution: Result<SharedSolution<'_>, SessionError> = shared.solve(&case);
        let solution: SharedSolution<'_> = solution.unwrap();
        let view: SolutionView<'_> = solution.view();
        assert!(view.converged());
    }
    {
        let attempt: Result<TryCheckout<SharedSolution<'_>>, SessionError> =
            shared.try_solve(&case);
        match attempt.unwrap() {
            TryCheckout::Ready(solution) => assert!(solution.view().converged()),
            TryCheckout::Busy => panic!("an idle pool must be ready"),
        }
    }
    {
        let loads: Vec<f64> = stack.loads().to_vec();
        let set: LoadSet<'_> = LoadSet::new(&stack, &loads);
        let batch: Result<SharedSolution<'_>, SessionError> = shared.solve_batch(&set);
        assert_eq!(batch.unwrap().view().lanes(), 1);
        let attempt: Result<TryCheckout<SharedSolution<'_>>, SessionError> =
            shared.try_solve_batch(&set);
        assert!(matches!(attempt.unwrap(), TryCheckout::Ready(_)));
    }
    {
        // Bounded-wait admission: try for up to a wait, then report Busy.
        use std::time::Duration;
        let attempt: Result<TryCheckout<SharedSolution<'_>>, SessionError> =
            shared.try_solve_for(&case, Duration::from_millis(50));
        assert!(matches!(attempt.unwrap(), TryCheckout::Ready(_)));
        let loads: Vec<f64> = stack.loads().to_vec();
        let set: LoadSet<'_> = LoadSet::new(&stack, &loads);
        let attempt: Result<TryCheckout<SharedSolution<'_>>, SessionError> =
            shared.try_solve_batch_for(&set, Duration::from_millis(50));
        assert!(matches!(attempt.unwrap(), TryCheckout::Ready(_)));
    }
}

#[test]
fn error_types_are_std_errors() {
    fn assert_error<E: std::error::Error>() {}
    assert_error::<BuildError>();
    assert_error::<SessionError>();
    assert_error::<SolverError>();
    assert_error::<GridError>();
}

#[test]
fn stack_solver_objects_still_box() {
    // The trait-object layer the comparisons are built on must stay
    // object-safe.
    let solvers: Vec<Box<dyn StackSolver>> = vec![
        Box::new(VpSolver::default()),
        Box::new(Rb3d::default()),
        Box::new(Pcg::default()),
        Box::new(DirectCholesky::new()),
    ];
    assert_eq!(solvers.len(), 4);
}
