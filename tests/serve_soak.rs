//! Overload and robustness contract of `voltprop-serve`, exercised
//! deterministically over the wire:
//!
//! * deadlines surface as typed `deadline-exceeded` errors while the
//!   connection stays open;
//! * a saturated scratch pool sheds with typed `overloaded` +
//!   `retry_after_ms` instead of queueing unboundedly;
//! * connections past `max_connections` get one typed shed line, never
//!   a silent hang;
//! * the per-connection rate cap sheds without closing;
//! * an oversized request line gets `malformed-request`, then close
//!   (framing is unrecoverable mid-line);
//! * the registry evicts least-recently-used idle sessions under its
//!   byte budget;
//! * shutdown joins every handler thread (`ServerHandle::stats`).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use voltprop::{SharedSession, Stack3d, TsvPattern, VpConfig};
use voltprop_serve::json::Json;
use voltprop_serve::{serve, Client, ServeConfig, ServerHandle};

/// A solve request that cannot converge (outer epsilon far below
/// attainable, inner tolerance pinned attainable so every inner solve —
/// f64 or forced-mixed — succeeds) and cannot exhaust its iteration
/// budget before `deadline_ms`: it holds its scratch slot until the
/// deadline fires.
fn starved_solve(width: usize, deadline_ms: u64) -> String {
    format!(
        r#"{{"op":"solve","stack":{{"width":{width},"height":{width},"tiers":2,"tsv_pitch":2,"loads":1e-4}},"deadline_ms":{deadline_ms},"params":{{"epsilon":1e-300,"inner_tolerance":1e-5,"max_outer_iterations":1000000000}}}}"#
    )
}

fn plain_solve(width: usize) -> String {
    format!(
        r#"{{"op":"solve","stack":{{"width":{width},"height":{width},"tiers":2,"tsv_pitch":2,"loads":1e-4}}}}"#
    )
}

fn error_kind(value: &Json) -> Option<&str> {
    value
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
}

#[test]
fn budget_starved_solve_is_shed_deadline_exceeded() {
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            slots: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let reply = client.request(&starved_solve(10, 150)).unwrap();
    let value = Json::parse(&reply).unwrap();
    assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&value), Some("deadline-exceeded"), "{reply}");

    // The shed is per-request: the connection still serves.
    let warm = Json::parse(&client.request(&plain_solve(10)).unwrap()).unwrap();
    assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm.get("cached").and_then(Json::as_bool),
        Some(true),
        "the deadline-shed request still warmed the registry"
    );
}

#[test]
fn saturated_pool_sheds_overloaded_with_retry_hint() {
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            slots: 1,
            checkout_wait_ms: 40,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    // Warm the registry so the hog pays no build time inside its window.
    let warm = Json::parse(&voltprop_serve::request(addr, &plain_solve(12)).unwrap()).unwrap();
    assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true));

    std::thread::scope(|scope| {
        // The hog: a non-converging solve that owns the single scratch
        // slot until its 1.5 s deadline.
        let hog = scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.request(&starved_solve(12, 1_500)).unwrap()
        });
        // Give the hog time to be admitted, then contend for the slot.
        std::thread::sleep(Duration::from_millis(400));
        let reply = voltprop_serve::request(addr, &plain_solve(12)).unwrap();
        let value = Json::parse(&reply).unwrap();
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(error_kind(&value), Some("overloaded"), "{reply}");
        let retry_after = value
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_usize)
            .expect("overloaded carries a retry_after_ms hint");
        assert!((1..=10_000).contains(&retry_after));

        let hog_reply = Json::parse(&hog.join().unwrap()).unwrap();
        assert_eq!(
            error_kind(&hog_reply),
            Some("deadline-exceeded"),
            "the hog itself ends via its deadline"
        );
    });

    // Once the hog drained, the same request is admitted again.
    let after = Json::parse(&voltprop_serve::request(addr, &plain_solve(12)).unwrap()).unwrap();
    assert_eq!(after.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn connection_cap_sheds_with_a_typed_line() {
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_connections: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Fill the cap and prove both connections are live handlers.
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    assert_eq!(
        a.request(r#"{"op":"ping"}"#).unwrap(),
        r#"{"ok":true,"pong":true}"#
    );
    assert_eq!(
        b.request(r#"{"op":"ping"}"#).unwrap(),
        r#"{"ok":true,"pong":true}"#
    );

    // The third connection gets exactly one typed overloaded line…
    let shed = TcpStream::connect(server.addr()).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(shed);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let value = Json::parse(line.trim()).unwrap();
    assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&value), Some("overloaded"), "{line}");
    assert!(value
        .get("error")
        .and_then(|e| e.get("retry_after_ms"))
        .and_then(Json::as_usize)
        .is_some());
    // …followed by a close.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);

    // Freeing a slot re-admits: close one client, retry until the
    // handler's exit is observed by the accept loop.
    drop(b);
    let mut admitted = false;
    for _ in 0..50 {
        std::thread::sleep(Duration::from_millis(100));
        if let Ok(pong) = voltprop_serve::request(server.addr(), r#"{"op":"ping"}"#) {
            if pong.contains("\"pong\":true") {
                admitted = true;
                break;
            }
        }
    }
    assert!(
        admitted,
        "capacity freed by a closed connection is reusable"
    );
    drop(a);
}

#[test]
fn rate_limited_connection_is_shed_without_closing() {
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_rps_per_conn: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let mut overloaded = 0;
    for _ in 0..6 {
        let reply = client.request(r#"{"op":"ping"}"#).unwrap();
        let value = Json::parse(&reply).unwrap();
        match value.get("ok").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => {
                assert_eq!(error_kind(&value), Some("overloaded"), "{reply}");
                overloaded += 1;
            }
            None => panic!("untyped reply: {reply}"),
        }
    }
    assert!(
        overloaded >= 3,
        "6 back-to-back requests at 2 rps must shed at least 3, got {overloaded}"
    );
    // The counting window expires and the same connection serves again.
    std::thread::sleep(Duration::from_millis(1_100));
    assert_eq!(
        client.request(r#"{"op":"ping"}"#).unwrap(),
        r#"{"ok":true,"pong":true}"#
    );
}

#[test]
fn oversized_line_gets_malformed_request_then_close() {
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_line_bytes: 512,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    // 2 KiB of newline-free garbage overflows the 512-byte line cap.
    writer.write_all(&[b'x'; 2048]).unwrap();
    writer.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let value = Json::parse(line.trim()).unwrap();
    assert_eq!(value.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&value), Some("malformed-request"), "{line}");
    // Framing is unrecoverable mid-line: the server closes.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);
}

#[test]
fn registry_evicts_lru_sessions_under_its_byte_budget() {
    // Measure real session footprints so the budget fits exactly one of
    // the two geometries the test serves.
    let probe = |width: usize| -> usize {
        let stack = Stack3d::builder(width, width, 2)
            .tsv_pattern(TsvPattern::Uniform { pitch: 2 })
            .uniform_load(1e-4)
            .build()
            .unwrap();
        SharedSession::build(&stack, VpConfig::default(), 1)
            .unwrap()
            .memory_bytes()
    };
    let budget = probe(10).max(probe(11)) + probe(10) / 2;
    let server = serve(
        "127.0.0.1:0",
        ServeConfig {
            slots: 1,
            registry_bytes: budget,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let first = Json::parse(&client.request(&plain_solve(10)).unwrap()).unwrap();
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
    // Same geometry is cached…
    let again = Json::parse(&client.request(&plain_solve(10)).unwrap()).unwrap();
    assert_eq!(again.get("cached").and_then(Json::as_bool), Some(true));

    // …until a second geometry pushes the registry past its budget and
    // evicts the idle LRU entry.
    let second = Json::parse(&client.request(&plain_solve(11)).unwrap()).unwrap();
    assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));
    let info = Json::parse(&client.request(r#"{"op":"info"}"#).unwrap()).unwrap();
    assert_eq!(
        info.get("sessions").and_then(Json::as_usize),
        Some(1),
        "budget fits one session: {info}"
    );
    assert!(
        info.get("evictions").and_then(Json::as_usize) >= Some(1),
        "eviction must be reported: {info}"
    );
    assert!(
        info.get("registry_bytes").and_then(Json::as_usize) <= Some(budget),
        "registry within budget: {info}"
    );

    // The evicted geometry is served again by a fresh build.
    let rebuilt = Json::parse(&client.request(&plain_solve(10)).unwrap()).unwrap();
    assert_eq!(rebuilt.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        rebuilt.get("cached").and_then(Json::as_bool),
        Some(false),
        "evicted session was rebuilt, not served stale"
    );
}

#[test]
fn shutdown_joins_every_handler_thread() {
    let server: ServerHandle = serve(
        "127.0.0.1:0",
        ServeConfig {
            slots: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // A few concurrent clients, one of which abandons its connection
    // mid-life, so the join accounting covers the unclean path too.
    std::thread::scope(|scope| {
        for c in 0..4 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let reply = client.request(&plain_solve(10 + c % 2)).unwrap();
                assert!(reply.contains("\"ok\":true"));
                if c == 0 {
                    return; // drop without a clean goodbye
                }
                let _ = client.request(r#"{"op":"ping"}"#);
            });
        }
    });

    let mut server = server;
    server.shutdown();
    let stats = server.stats();
    assert!(stats.connections_accepted >= 4);
    assert_eq!(
        stats.handlers_spawned, stats.handlers_finished,
        "every handler thread must be joined after shutdown: {stats:?}"
    );
}
