//! Integration: ground-net analysis and the combined supply-collapse view.

use voltprop::solvers::residual;
use voltprop::{DirectCholesky, LoadCase, NetKind, Session, StackSolver, SynthConfig, VpConfig};

#[test]
fn total_rail_collapse_is_power_drop_plus_ground_bounce() {
    let stack = SynthConfig::new(14, 14, 3).seed(77).build().unwrap();
    // Both nets are served by one prefactored session.
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let power = session
        .solve(&LoadCase::new(&stack))
        .unwrap()
        .voltages()
        .to_vec();
    let ground = session
        .solve(&LoadCase::new(&stack).net(NetKind::Ground))
        .unwrap()
        .voltages()
        .to_vec();

    // For identical P/G topologies, the effective supply each device sees
    // is VDD - drop_p - bounce_g; both nets mirror each other, so the
    // collapse is exactly twice the power-net drop.
    let reference = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    for i in 0..stack.num_nodes() {
        let drop_p = stack.vdd() - power[i];
        let bounce_g = ground[i];
        let exact_drop = stack.vdd() - reference.voltages[i];
        let collapse = drop_p + bounce_g;
        assert!(
            (collapse - 2.0 * exact_drop).abs() < 2e-3,
            "node {i}: collapse {collapse} vs 2x exact drop {}",
            2.0 * exact_drop
        );
    }
}

#[test]
fn ground_bounce_is_nonnegative_and_bounded() {
    let stack = SynthConfig::new(16, 16, 3).seed(5).build().unwrap();
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let ground = session
        .solve(&LoadCase::new(&stack).net(NetKind::Ground))
        .unwrap();
    let eps = 2e-4;
    for &v in ground.voltages() {
        assert!(v >= -eps, "bounce {v} below zero");
        assert!(v < stack.vdd() / 2.0, "bounce {v} absurdly large");
    }
}

#[test]
fn ground_net_netlist_export_solves() {
    let stack = SynthConfig::new(8, 8, 2).seed(2).build().unwrap();
    let spice = stack.to_netlist(NetKind::Ground).to_spice();
    let parsed = voltprop::Netlist::parse(&spice).unwrap();
    let circuit = voltprop::NetlistCircuit::elaborate(&parsed).unwrap();
    let v = circuit.solve_dense().unwrap();

    let direct = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Ground)
        .unwrap();
    let name = voltprop::grid::netlist::names::node_name(0, 3, 3);
    let from_netlist = circuit.voltage_of(&v, &name).unwrap();
    let from_model = direct.voltages[stack.node_index(0, 3, 3)];
    assert!(
        (from_netlist - from_model).abs() < 1e-9,
        "{from_netlist} vs {from_model}"
    );
    let err = residual::max_abs_error(&direct.voltages, &direct.voltages);
    assert_eq!(err, 0.0);
}
