//! End-to-end validation of the true transient engine
//! (`Session::transient_dynamic`): companion models against closed-form
//! RC exponentials, integration-order checks, cross-backend agreement
//! against a direct companion-system reference, prefactor-reuse
//! accounting, step-size-change determinism, and mid-waveform deadline
//! cancellation.

use std::time::Duration;

use voltprop::{
    Backend, Deadline, DirectCholesky, FnWaveform, Integrator, LinearSolver, NetKind, PwlWaveform,
    Session, SessionError, SolveParams, SolverError, Stack3d, TraceSink, TransientParams,
    TsvPattern, VpConfig,
};

/// A 2×2 single-tier stack with one free node: pads pin three corners at
/// the rail, the fourth node carries a decap `C` and a step load `I`
/// through two unit-resistance wires, so the node is a textbook RC
/// divider — `τ = C/(g_h + g_v)`, `v_∞ = VDD − I/(g_h + g_v)`.
fn rc_stack(c: f64, i: f64) -> Stack3d {
    Stack3d::builder(2, 2, 1)
        .tsv_pattern(TsvPattern::Uniform { pitch: 1 })
        .pad_sites(vec![(0, 0), (1, 0), (0, 1)])
        .wire_resistance(1.0)
        .loads(vec![0.0, 0.0, 0.0, i])
        .decap(0, 1, 1, c)
        .build()
        .unwrap()
}

const C: f64 = 5e-11; // 50 pF decap
const I: f64 = 1e-3; // 1 mA step load
const G: f64 = 2.0; // two 1 Ω wires to the pinned corners
const TAU: f64 = C / G; // 25 ps

fn tight() -> SolveParams {
    SolveParams::new()
        .epsilon(1e-10)
        .inner_tolerance(1e-13)
        .max_inner_sweeps(200_000)
}

/// `v(t)` of the free node: exponential relaxation from the rail to
/// `v_∞` with time constant `τ`.
fn analytic(t: f64) -> f64 {
    let vdd = 1.8;
    let v_inf = vdd - I / G;
    v_inf + (vdd - v_inf) * (-t / TAU).exp()
}

/// Runs `steps` constant-load steps of size `h` on the RC stack and
/// returns the free node's trace.
fn run_rc(
    session: &mut Session,
    stack: &Stack3d,
    h: f64,
    steps: usize,
    integrator: Integrator,
    backend: Backend,
) -> Vec<f64> {
    let mut wave = FnWaveform::new(steps, |_s, _t, loads: &mut [f64]| {
        loads.copy_from_slice(&[0.0, 0.0, 0.0, I]);
    });
    let mut sink = TraceSink::with_capacity(steps, 1);
    let watch = [3usize];
    let request = TransientParams::new(stack, h)
        .integrator(integrator)
        .backend(backend)
        .params(tight())
        .observe(&watch);
    let report = session
        .transient_dynamic(&mut wave, &mut sink, &request)
        .unwrap();
    assert_eq!(report.steps, steps);
    sink.values().to_vec()
}

#[test]
fn backward_euler_matches_closed_form_rc() {
    let stack = rc_stack(C, I);
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let h = TAU / 50.0;
    let steps = 300; // six time constants
    for backend in [Backend::VoltProp, Backend::Rb3d, Backend::Pcg] {
        let trace = run_rc(
            &mut session,
            &stack,
            h,
            steps,
            Integrator::BackwardEuler,
            backend,
        );
        let worst = trace
            .iter()
            .enumerate()
            .map(|(s, &v)| (v - analytic((s as f64 + 1.0) * h)).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst < 5e-6,
            "{backend:?}: BE at h = τ/50 drifts {worst} V from the exponential"
        );
        // The transient actually moves: starts near the rail, ends at
        // v_∞ (the discrete BE decay lags e^{−t/τ} slightly at 6τ).
        assert!((trace[0] - 1.8).abs() < 2e-5);
        assert!((trace[steps - 1] - (1.8 - I / G)).abs() < 5e-6);
    }
}

#[test]
fn trapezoidal_matches_closed_form_rc_tighter() {
    let stack = rc_stack(C, I);
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let h = TAU / 50.0;
    let steps = 300;
    let trace = run_rc(
        &mut session,
        &stack,
        h,
        steps,
        Integrator::Trapezoidal,
        Backend::VoltProp,
    );
    let worst = trace
        .iter()
        .enumerate()
        .map(|(s, &v)| (v - analytic((s as f64 + 1.0) * h)).abs())
        .fold(0.0f64, f64::max);
    assert!(
        worst < 2e-7,
        "trapezoidal at h = τ/50 drifts {worst} V from the exponential"
    );
}

/// Halving the step halves the backward-Euler error and quarters the
/// trapezoidal error (first- vs second-order accuracy), measured at a
/// fixed time `T = 2τ`.
#[test]
fn integration_orders_hold_as_h_halves() {
    let stack = rc_stack(C, I);
    let mut session = Session::build(&stack, VpConfig::default()).unwrap();
    let t_end = 2.0 * TAU;
    let err_at = |session: &mut Session, integrator, n_steps: usize| -> f64 {
        let h = t_end / n_steps as f64;
        let trace = run_rc(session, &stack, h, n_steps, integrator, Backend::VoltProp);
        (trace[n_steps - 1] - analytic(t_end)).abs()
    };

    let be: Vec<f64> = [20, 40, 80]
        .iter()
        .map(|&n| err_at(&mut session, Integrator::BackwardEuler, n))
        .collect();
    for w in be.windows(2) {
        let ratio = w[0] / w[1];
        assert!(
            (1.6..2.4).contains(&ratio),
            "BE error ratio {ratio} not ~2 (errors {be:?})"
        );
    }

    let tr: Vec<f64> = [20, 40, 80]
        .iter()
        .map(|&n| err_at(&mut session, Integrator::Trapezoidal, n))
        .collect();
    for w in tr.windows(2) {
        let ratio = w[0] / w[1];
        assert!(
            (3.2..4.8).contains(&ratio),
            "trapezoidal error ratio {ratio} not ~4 (errors {tr:?})"
        );
    }
    // And at every step count the trapezoidal answer beats BE outright.
    for (b, t) in be.iter().zip(&tr) {
        assert!(t < b);
    }
}

/// A multi-tier grid with mixed capacitances: all three backends step the
/// same companion system and agree with a direct Cholesky reference that
/// steps `(G + C/h) v_{n+1} = b_{n+1} + (C/h) v_n` exactly.
#[test]
fn backends_agree_with_direct_companion_reference() {
    let stack = Stack3d::builder(8, 8, 2)
        .uniform_load(2e-4)
        .grid_capacitance(2e-12)
        .decap(0, 3, 3, 5e-11)
        .pad_capacitance(1e-12)
        .build()
        .unwrap();
    let nn = stack.num_nodes();
    let h = 1e-11;
    let steps = 25;
    let ramp = || {
        PwlWaveform::new(stack.loads().to_vec(), steps, h)
            .breakpoint(0.0, 0.0)
            .breakpoint(10.0 * h, 1.0)
    };

    // Direct reference: factor the companion matrix once, step exactly.
    let sys = stack.stamp_dynamic(NetKind::Power, 1.0 / h).unwrap();
    let direct = DirectCholesky::new();
    let mut v = vec![stack.vdd(); nn];
    let mut loads = vec![0.0; nn];
    let mut reference = Vec::with_capacity(steps * nn);
    let mut wave = ramp();
    use voltprop::Waveform;
    for s in 0..steps {
        wave.sample(s, (s as f64 + 1.0) * h, &mut loads);
        let mut shifted = stack.clone();
        shifted.set_loads(loads.clone()).unwrap();
        let shifted_sys = shifted.stamp_dynamic(NetKind::Power, 1.0 / h).unwrap();
        let mut rhs = shifted_sys.rhs().to_vec();
        let caps = stack.capacitances().unwrap();
        let mut source = vec![0.0; nn];
        for i in 0..nn {
            source[i] = caps[i] / h * v[i];
        }
        for (ri, extra) in sys.restrict(&source).iter().enumerate() {
            rhs[ri] += extra;
        }
        let x = direct.solve(sys.matrix(), &rhs).unwrap();
        sys.expand_into(&x.x, stack.vdd(), &mut v);
        reference.extend_from_slice(&v);
    }

    let params = tight();
    for (backend, tol) in [
        (Backend::VoltProp, 2e-4),
        (Backend::Rb3d, 1e-6),
        (Backend::Pcg, 1e-6),
    ] {
        let mut wave = ramp();
        let mut sink = TraceSink::with_capacity(steps, nn);
        let request = TransientParams::new(&stack, h)
            .backend(backend)
            .params(params);
        let report = session_for(&stack)
            .transient_dynamic(&mut wave, &mut sink, &request)
            .unwrap();
        assert_eq!(report.steps, steps);
        assert_eq!(report.refactors, 1, "{backend:?} prefactors exactly once");
        let worst = sink
            .values()
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst < tol,
            "{backend:?} drifts {worst} V from the direct companion reference"
        );
    }
}

fn session_for(stack: &Stack3d) -> Session {
    Session::build(stack, VpConfig::default()).unwrap()
}

/// The factor-reuse contract: one prefactor on the first run, zero on a
/// warm rerun, one after a step-size change, and returning to a previous
/// step size re-prefactors deterministically — the rebuilt factors
/// reproduce the original trace bitwise.
#[test]
fn step_size_change_reprefactors_deterministically() {
    let stack = Stack3d::builder(8, 8, 2)
        .uniform_load(2e-4)
        .grid_capacitance(2e-12)
        .decap(1, 5, 5, 8e-11)
        .build()
        .unwrap();
    let mut session = session_for(&stack);
    let steps = 12;
    let nn = stack.num_nodes();
    let run = |session: &mut Session, h: f64| -> (Vec<f64>, usize) {
        let mut wave = FnWaveform::new(steps, |_s, t, loads: &mut [f64]| {
            let scale = if t > 5.0 * h { 1.0 } else { 0.5 };
            for (l, &b) in loads.iter_mut().zip(stack.loads()) {
                *l = scale * b;
            }
        });
        let mut sink = TraceSink::with_capacity(steps, nn);
        let report = session
            .transient_dynamic(&mut wave, &mut sink, &TransientParams::new(&stack, h))
            .unwrap();
        (sink.values().to_vec(), report.refactors)
    };

    let (first, refactors) = run(&mut session, 1e-11);
    assert_eq!(refactors, 1, "cold run prefactors once");
    let (again, refactors) = run(&mut session, 1e-11);
    assert_eq!(refactors, 0, "warm rerun reuses the factor");
    assert_eq!(first, again, "warm rerun is bitwise identical");
    let (_, refactors) = run(&mut session, 5e-12);
    assert_eq!(refactors, 1, "step-size change re-prefactors");
    let (back, refactors) = run(&mut session, 1e-11);
    assert_eq!(refactors, 1, "returning to the old step re-prefactors");
    assert_eq!(first, back, "rebuilt factors reproduce the trace bitwise");
    // Switching integrator changes α and re-prefactors too.
    let mut wave = FnWaveform::new(2, |_s, _t, loads: &mut [f64]| {
        loads.copy_from_slice(stack.loads());
    });
    let report = session
        .transient_dynamic(
            &mut wave,
            &mut |_: usize, _: f64, _: &[f64]| {},
            &TransientParams::new(&stack, 1e-11).integrator(Integrator::Trapezoidal),
        )
        .unwrap();
    assert_eq!(report.refactors, 1);
}

/// A stack with no capacitance degenerates to quasi-static stepping:
/// each transient step equals the corresponding DC solve.
#[test]
fn resistive_stack_degenerates_to_quasi_static() {
    let stack = Stack3d::builder(10, 10, 3)
        .uniform_load(3e-4)
        .build()
        .unwrap();
    assert!(!stack.has_dynamics());
    let mut session = session_for(&stack);
    let dc = session
        .solve(&voltprop::LoadCase::new(&stack))
        .unwrap()
        .voltages()
        .to_vec();
    let mut wave = FnWaveform::new(3, |_s, _t, loads: &mut [f64]| {
        loads.copy_from_slice(stack.loads());
    });
    let mut sink = TraceSink::with_capacity(3, stack.num_nodes());
    session
        .transient_dynamic(&mut wave, &mut sink, &TransientParams::new(&stack, 1e-10))
        .unwrap();
    for step in 0..3 {
        let worst = sink
            .step_values(step)
            .iter()
            .zip(&dc)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst < 1e-9,
            "step {step} drifts {worst} V from the DC solve"
        );
    }
}

/// The request deadline cancels mid-waveform with a typed error whose
/// `iterations` field carries the step index the run stopped at.
#[test]
fn deadline_cancels_mid_waveform_with_step_index() {
    let stack = rc_stack(C, I);
    let mut session = session_for(&stack);

    // Already-expired deadline: stops before step 0.
    let mut wave = FnWaveform::new(10, |_s, _t, loads: &mut [f64]| {
        loads.copy_from_slice(&[0.0, 0.0, 0.0, I]);
    });
    let mut sink = |_: usize, _: f64, _: &[f64]| {};
    let err = session
        .transient_dynamic(
            &mut wave,
            &mut sink,
            &TransientParams::new(&stack, TAU / 10.0).deadline(Deadline::after(Duration::ZERO)),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        SessionError::Solver(SolverError::DeadlineExceeded { iterations: 0 })
    ));

    // Expiring mid-waveform: the waveform stalls during step 2's sample,
    // so the step-3 check trips and reports index 3.
    let mut stalling = FnWaveform::new(10, |s, _t, loads: &mut [f64]| {
        if s == 2 {
            std::thread::sleep(Duration::from_millis(60));
        }
        loads.copy_from_slice(&[0.0, 0.0, 0.0, I]);
    });
    let mut recorded = 0usize;
    let mut counting = |_: usize, _: f64, _: &[f64]| recorded += 1;
    let err = session
        .transient_dynamic(
            &mut stalling,
            &mut counting,
            &TransientParams::new(&stack, TAU / 10.0)
                .deadline(Deadline::after(Duration::from_millis(20))),
        )
        .unwrap_err();
    match err {
        SessionError::Solver(SolverError::DeadlineExceeded { iterations }) => {
            assert_eq!(iterations, 3, "error carries the step index");
        }
        other => panic!("expected a deadline error, got {other:?}"),
    }
    assert_eq!(recorded, 3, "steps 0..=2 completed before cancellation");
}

/// Malformed waveform samples are rejected with a typed error naming the
/// step.
#[test]
fn bad_waveform_samples_are_rejected() {
    let stack = rc_stack(C, I);
    let mut session = session_for(&stack);
    let mut wave = FnWaveform::new(4, |s, _t, loads: &mut [f64]| {
        loads.fill(if s == 2 { -1.0 } else { 1e-4 });
    });
    let mut sink = |_: usize, _: f64, _: &[f64]| {};
    let err = session
        .transient_dynamic(&mut wave, &mut sink, &TransientParams::new(&stack, 1e-11))
        .unwrap_err();
    match err {
        SessionError::Solver(SolverError::Unsupported { what }) => {
            assert!(what.contains("step 2"), "error names the step: {what}");
        }
        other => panic!("expected Unsupported, got {other:?}"),
    }
}
