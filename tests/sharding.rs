//! Shard-count invariance: `BuildParams::shards` partitions the sweep,
//! never the answer. 1/2/4 shards must reproduce the unsharded engine
//! bitwise on VoltProp and Rb3d (and within the tolerance contract on
//! Pcg, which has no row structure to shard) in both precisions,
//! including masked/compacted batches and a transient run with a
//! mid-run refactor.
//!
//! Both sides of every comparison run with `parallelism(2)` so the
//! baseline uses the red-black schedule that `shards >= 2` forces —
//! the determinism contract is stated on `BuildParams::shards`.

use voltprop::{
    Backend, FnWaveform, LoadCase, LoadProfile, LoadSet, Precision, Session, SolveParams, Stack3d,
    TraceSink, TransientParams, VpConfig,
};

const SHARD_COUNTS: [usize; 2] = [2, 4];

fn stack() -> Stack3d {
    Stack3d::builder(12, 12, 3)
        .load_profile(
            LoadProfile::UniformRandom {
                min: 1e-5,
                max: 1e-3,
            },
            77,
        )
        .build()
        .unwrap()
}

fn config(shards: usize) -> VpConfig {
    VpConfig::new().parallelism(2).shards(shards)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: index {i} diverges: {x:e} vs {y:e}"
        );
    }
}

/// `k` lanes at diverging magnitudes so they freeze at different sweep
/// counts — the converged lanes exercise the masked/compacted batch
/// kernels while the stragglers keep sweeping.
fn load_sweep(stack: &Stack3d, k: usize) -> Vec<f64> {
    let mut loads = Vec::with_capacity(k * stack.num_nodes());
    for j in 0..k {
        let scale = 0.25 + 0.45 * j as f64;
        loads.extend(stack.loads().iter().map(|l| scale * l));
    }
    loads
}

#[test]
fn single_solves_are_shard_count_invariant() {
    let stack = stack();
    for backend in [Backend::VoltProp, Backend::Rb3d] {
        for precision in [Precision::F64, Precision::MixedF32] {
            let case = || {
                LoadCase::new(&stack)
                    .backend(backend)
                    .params(SolveParams::new().precision(precision))
            };
            let mut base = Session::build(&stack, config(1)).unwrap();
            let want = base.solve(&case()).unwrap().voltages().to_vec();
            for shards in SHARD_COUNTS {
                let mut session = Session::build(&stack, config(shards)).unwrap();
                let view = session.solve(&case()).unwrap();
                assert!(view.converged(), "{backend:?} {precision:?} x{shards}");
                assert_bits_eq(
                    &want,
                    view.voltages(),
                    &format!("{backend:?}/{precision:?}/shards={shards}"),
                );
            }
        }
    }
}

#[test]
fn pcg_accepts_the_shards_knob_within_its_tolerance_contract() {
    // Pcg has no row-band structure: the knob is accepted (so one config
    // can drive all backends) but the Krylov solve runs unsharded, and
    // the contract is agreement within the requested tolerance rather
    // than bitwise identity.
    let stack = stack();
    let case = || {
        LoadCase::new(&stack).backend(Backend::Pcg).params(
            SolveParams::new()
                .inner_tolerance(1e-10)
                .max_inner_sweeps(50_000),
        )
    };
    let mut base = Session::build(&stack, config(1)).unwrap();
    let want = base.solve(&case()).unwrap().voltages().to_vec();
    for shards in SHARD_COUNTS {
        let mut session = Session::build(&stack, config(shards)).unwrap();
        let view = session.solve(&case()).unwrap();
        assert!(view.converged(), "pcg x{shards}");
        let worst = want
            .iter()
            .zip(view.voltages())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-8, "pcg shards={shards} drifts {worst:e} V");
    }
}

#[test]
fn masked_batches_are_shard_count_invariant() {
    let stack = stack();
    let k = 5;
    let loads = load_sweep(&stack, k);
    for backend in [Backend::VoltProp, Backend::Rb3d] {
        for precision in [Precision::F64, Precision::MixedF32] {
            let set = || {
                LoadSet::new(&stack, &loads)
                    .backend(backend)
                    .params(SolveParams::new().precision(precision))
            };
            let mut base = Session::build(&stack, config(1)).unwrap();
            let want = base.solve_batch(&set()).unwrap();
            let want_lanes: Vec<Vec<f64>> = (0..k)
                .map(|j| want.lane_voltages(j).unwrap().to_vec())
                .collect();
            for shards in SHARD_COUNTS {
                let mut session = Session::build(&stack, config(shards)).unwrap();
                let got = session.solve_batch(&set()).unwrap();
                assert_eq!(got.lanes(), k);
                for (j, want_lane) in want_lanes.iter().enumerate() {
                    assert_bits_eq(
                        want_lane,
                        got.lane_voltages(j).unwrap(),
                        &format!("{backend:?}/{precision:?}/shards={shards}/lane={j}"),
                    );
                }
            }
        }
    }
}

#[test]
fn step_sweeps_are_shard_count_invariant() {
    let stack = stack();
    let nn = stack.num_nodes();
    let steps = 3;
    let loads = load_sweep(&stack, steps);
    let run = |session: &mut Session| -> Vec<Vec<f64>> {
        let view = session
            .solve_steps(&LoadCase::new(&stack), steps, |s, lane: &mut [f64]| {
                lane.copy_from_slice(&loads[s * nn..(s + 1) * nn]);
            })
            .unwrap();
        (0..steps)
            .map(|s| view.lane_voltages(s).unwrap().to_vec())
            .collect()
    };
    let mut base = Session::build(&stack, config(1)).unwrap();
    let want = run(&mut base);
    for shards in SHARD_COUNTS {
        let mut session = Session::build(&stack, config(shards)).unwrap();
        let got = run(&mut session);
        for s in 0..steps {
            assert_bits_eq(&want[s], &got[s], &format!("shards={shards}/step={s}"));
        }
    }
}

#[test]
fn transient_with_a_mid_run_refactor_is_shard_count_invariant() {
    let stack = Stack3d::builder(10, 10, 2)
        .grid_capacitance(2e-12)
        .decap(0, 3, 4, 5e-11)
        .decap(1, 6, 2, 2e-11)
        .load_profile(
            LoadProfile::UniformRandom {
                min: 1e-5,
                max: 8e-4,
            },
            31,
        )
        .build()
        .unwrap();
    let nn = stack.num_nodes();
    let base_loads = stack.loads().to_vec();
    // Two segments at different step sizes on one session: the h change
    // between them forces a companion re-prefactor mid-run, and the
    // rebuilt sharded factors must still match the unsharded rebuild.
    let run = |session: &mut Session| -> (Vec<f64>, usize) {
        let mut trace = Vec::new();
        let mut refactors = 0;
        for h in [1e-11, 4e-12] {
            let steps = 4;
            let mut wave = FnWaveform::new(steps, |s, _t, loads: &mut [f64]| {
                for (l, b) in loads.iter_mut().zip(&base_loads) {
                    *l = b * (1.0 + 0.15 * s as f64);
                }
            });
            let mut sink = TraceSink::with_capacity(steps, nn);
            let report = session
                .transient_dynamic(&mut wave, &mut sink, &TransientParams::new(&stack, h))
                .unwrap();
            assert_eq!(report.steps, steps);
            refactors += report.refactors;
            trace.extend_from_slice(sink.values());
        }
        (trace, refactors)
    };
    let mut base = Session::build(&stack, config(1)).unwrap();
    let (want, base_refactors) = run(&mut base);
    assert_eq!(base_refactors, 2, "cold prefactor + mid-run re-prefactor");
    for shards in SHARD_COUNTS {
        let mut session = Session::build(&stack, config(shards)).unwrap();
        let (got, refactors) = run(&mut session);
        assert_eq!(refactors, 2, "shards={shards}");
        assert_bits_eq(&want, &got, &format!("transient/shards={shards}"));
    }
}

#[test]
fn oversized_shard_counts_clamp_and_stay_invariant() {
    // More shards than grid rows clamps to one band per row; the result
    // is still bitwise identical and memory accounting stays positive.
    let stack = stack();
    let mut base = Session::build(&stack, config(1)).unwrap();
    let want = base
        .solve(&LoadCase::new(&stack))
        .unwrap()
        .voltages()
        .to_vec();
    let base_bytes = base.memory_bytes();
    let mut session = Session::build(&stack, config(64)).unwrap();
    let view = session.solve(&LoadCase::new(&stack)).unwrap();
    assert_bits_eq(&want, view.voltages(), "shards=64");
    assert!(
        session.memory_bytes() > base_bytes,
        "halo images must be accounted: {} !> {}",
        session.memory_bytes(),
        base_bytes
    );
}
