//! Integration: the Table-I benchmark presets are well-formed and the
//! smallest one solves end to end with every headline solver.

use voltprop::solvers::residual;
use voltprop::{DirectCholesky, NetKind, Pcg, StackSolver, SynthConfig, TableCircuit, VpSolver};

#[test]
fn all_presets_have_paper_node_counts() {
    let expected = [30_000, 90_000, 230_000, 1_000_000, 3_000_000, 12_000_000];
    for (c, want) in TableCircuit::ALL.into_iter().zip(expected) {
        let got = c.num_nodes();
        let rel = (got as f64 - want as f64).abs() / want as f64;
        assert!(rel < 0.01, "{c}: {got} nodes vs paper {want}");
    }
}

#[test]
fn c0_solves_with_all_headline_solvers() {
    // C0 is the paper's smallest circuit (30 K nodes) — big enough to be
    // meaningful, small enough for CI.
    let stack = TableCircuit::C0.build(1).unwrap();
    assert_eq!(stack.num_nodes(), 30_000);

    let exact = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    let vp = VpSolver::default()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    let pcg = Pcg::default().solve_stack(&stack, NetKind::Power).unwrap();

    let vp_err = residual::max_abs_error(&exact.voltages, &vp.voltages);
    let pcg_err = residual::max_abs_error(&exact.voltages, &pcg.voltages);
    assert!(vp_err < 5e-4, "VP error {:.4} mV", vp_err * 1e3);
    assert!(pcg_err < 5e-4, "PCG error {:.4} mV", pcg_err * 1e3);

    // The memory pitch of Table I: VP's workspace is well under PCG's.
    assert!(
        vp.report.workspace_bytes * 2 < pcg.report.workspace_bytes,
        "VP {} bytes vs PCG {} bytes",
        vp.report.workspace_bytes,
        pcg.report.workspace_bytes
    );
}

#[test]
fn presets_are_deterministic() {
    let a = SynthConfig::table_circuit(TableCircuit::C0)
        .seed(9)
        .build()
        .unwrap();
    let b = SynthConfig::table_circuit(TableCircuit::C0)
        .seed(9)
        .build()
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn preset_has_paper_tsv_density_and_resistance() {
    let stack = TableCircuit::C0.build(0).unwrap();
    assert_eq!(stack.tsv_resistance(), 0.05, "paper's R_TSV");
    let density = stack.nodes_per_tier() as f64 / stack.tsv_sites().len() as f64;
    assert!((density - 4.0).abs() < 0.1, "one TSV per four nodes");
    assert_eq!(stack.tiers(), 3, "replicated thrice");
}
