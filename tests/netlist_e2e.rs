//! Integration: netlist export → text → parse → elaborate → stamp → solve
//! must agree with solving the in-memory model directly.

use voltprop::grid::netlist::names::node_name;
use voltprop::{
    DirectCholesky, NetKind, Netlist, NetlistCircuit, Stack3d, StackSolver, SynthConfig, VpSolver,
};

#[test]
fn text_roundtrip_preserves_solution() {
    let stack = SynthConfig::new(10, 8, 3).seed(31).build().unwrap();
    let spice = stack.to_netlist(NetKind::Power).to_spice();
    let parsed = Netlist::parse(&spice).unwrap();
    let circuit = NetlistCircuit::elaborate(&parsed).unwrap();
    circuit.check_connectivity().unwrap();

    let sys = circuit.stamp().unwrap();
    let x = voltprop::sparse::Cholesky::factor(sys.matrix())
        .unwrap()
        .solve(sys.rhs());
    let full = sys.expand(&x);

    let direct = DirectCholesky::new()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    for tier in 0..stack.tiers() {
        for y in 0..stack.height() {
            for x in 0..stack.width() {
                let by_name = circuit
                    .voltage_of(&full, &node_name(tier, x, y))
                    .expect("node present");
                let by_model = direct.voltages[stack.node_index(tier, x, y)];
                assert!(
                    (by_name - by_model).abs() < 1e-9,
                    "node ({tier},{x},{y}): {by_name} vs {by_model}"
                );
            }
        }
    }
}

#[test]
fn reconstructed_stack_solves_identically_with_vp() {
    let stack = SynthConfig::new(12, 12, 3).seed(8).build().unwrap();
    let spice = stack.to_netlist(NetKind::Power).to_spice();
    let rebuilt = Stack3d::from_netlist(&Netlist::parse(&spice).unwrap()).unwrap();
    assert_eq!(stack, rebuilt);

    let a = VpSolver::default()
        .solve_stack(&stack, NetKind::Power)
        .unwrap();
    let b = VpSolver::default()
        .solve_stack(&rebuilt, NetKind::Power)
        .unwrap();
    assert_eq!(a.voltages, b.voltages, "identical models, identical solve");
}

#[test]
fn foreign_netlist_solves_without_stack_structure() {
    // A hand-written non-mesh netlist still solves through the generic
    // path even though it is not a stack.
    let spice = "\
* bridge network
V1 src 0 1.0
R1 src a 1.0
R2 src b 2.0
R3 a b 1.0
R4 a 0 2.0
R5 b 0 1.0
I1 a 0 0.1
";
    let parsed = Netlist::parse(spice).unwrap();
    assert!(Stack3d::from_netlist(&parsed).is_err());
    let circuit = NetlistCircuit::elaborate(&parsed).unwrap();
    let v = circuit.solve_dense().unwrap();
    // Spot-check with nodal analysis computed by hand:
    //   a: (1-Va)·1 + (Vb-Va)·1 - Va/2 - 0.1 = 0  →  2.5·Va - Vb = 0.9
    //   b: (1-Vb)/2 + (Va-Vb)·1 - Vb/1 = 0        →  Va = 2.5·Vb - 0.5
    // → Vb = 43/105, Va = 11/21.
    let va = circuit.voltage_of(&v, "a").unwrap();
    let vb = circuit.voltage_of(&v, "b").unwrap();
    assert!((va - 11.0 / 21.0).abs() < 1e-10, "Va = {va}");
    assert!((vb - 43.0 / 105.0).abs() < 1e-10, "Vb = {vb}");
}

#[test]
fn malformed_netlists_fail_with_line_numbers() {
    let err = Netlist::parse("R1 a 0 1.0\nI1 a\n").unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}
