//! Integration: behaviour across tier counts — the conclusion's claim that
//! deeper stacks are where VP pays off most.

use voltprop::solvers::residual;
use voltprop::{
    DirectCholesky, LoadCase, LoadProfile, NetKind, Session, Stack3d, StackSolver, VpConfig,
    VpReport,
};

/// Solves the stack's power net on a fresh one-shot session.
fn vp_solve(stack: &Stack3d) -> (Vec<f64>, Vec<f64>, VpReport) {
    let mut session = Session::build(stack, VpConfig::default()).unwrap();
    let view = session.solve(&LoadCase::new(stack)).unwrap();
    (
        view.voltages().to_vec(),
        view.pillar_currents().to_vec(),
        *view.report(),
    )
}

fn stack_with_tiers(tiers: usize) -> Stack3d {
    Stack3d::builder(10, 10, tiers)
        .load_profile(
            LoadProfile::UniformRandom {
                min: 1e-4,
                max: 1e-3,
            },
            44,
        )
        .build()
        .unwrap()
}

#[test]
fn vp_accurate_from_one_to_six_tiers() {
    for tiers in 1..=6 {
        let stack = stack_with_tiers(tiers);
        let exact = DirectCholesky::new()
            .solve_stack(&stack, NetKind::Power)
            .unwrap();
        let (voltages, _, _) = vp_solve(&stack);
        let err = residual::max_abs_error(&exact.voltages, &voltages);
        assert!(err < 5e-4, "{tiers} tiers: error {:.4} mV", err * 1e3);
    }
}

#[test]
fn drop_deepens_with_distance_from_pads() {
    // Monotone physics: the farther a tier is from the package, the worse
    // its average IR drop.
    let stack = stack_with_tiers(4);
    let (voltages, _, _) = vp_solve(&stack);
    let per = stack.nodes_per_tier();
    let mut tier_means = Vec::new();
    for t in 0..4 {
        let mean: f64 = voltages[t * per..(t + 1) * per]
            .iter()
            .map(|v| stack.vdd() - v)
            .sum::<f64>()
            / per as f64;
        tier_means.push(mean);
    }
    for t in 0..3 {
        assert!(
            tier_means[t] >= tier_means[t + 1] - 1e-6,
            "tier {t} ({}) should sag at least as much as tier {} ({})",
            tier_means[t],
            t + 1,
            tier_means[t + 1]
        );
    }
}

#[test]
fn pillar_current_grows_toward_package() {
    // Each pillar's accumulated current at the top interface must equal
    // the sum of what the tiers below consume; spot-check monotonicity via
    // the exposed pillar currents (total into all tiers, positive).
    let stack = stack_with_tiers(3);
    let (_, pillar_currents, _) = vp_solve(&stack);
    assert!(pillar_currents.iter().all(|&i| i > 0.0));
}

#[test]
fn outer_iterations_stay_bounded_with_depth() {
    // VP's outer loop should not blow up with tier count (the naive RB
    // extension does).
    for tiers in [2, 4, 6] {
        let stack = stack_with_tiers(tiers);
        let (_, _, report) = vp_solve(&stack);
        assert!(
            report.outer_iterations <= 40,
            "{tiers} tiers took {} outer iterations",
            report.outer_iterations
        );
    }
}
